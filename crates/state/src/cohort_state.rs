//! The cohort-compressed state backend, on a persistent copy-on-write
//! representation.
//!
//! Within a branch, every validator of a behaviour class receives the
//! same participation flags each epoch, and the spec's epoch processing
//! is a per-validator function of `(own state, global aggregates)` — so
//! all members of a class follow **bit-identical integer trajectories**.
//! [`CohortState`] exploits this: instead of one record per validator it
//! stores, per class, a sorted run-length-encoded chunk of
//! `(per-validator state, count)` cohorts and processes an epoch in
//! O(#cohorts) with the *same* integer arithmetic as
//! [`BeaconState`](crate::BeaconState). The compression is exact, not an
//! approximation: driven through the same schedule, the two backends
//! produce equal [`StateSnapshot`]s after every epoch (property-tested in
//! `tests/backend_equivalence.rs`, including against the retained
//! clone-based [`ReferenceCohortState`](crate::ReferenceCohortState)).
//!
//! Cohorts **split** when a subgroup diverges — the only divergence
//! source is participation sampling ([`StateBackend::mark_class_sampled`]
//! marks part of a cohort, leaving the rest untouched) — and **merge**
//! automatically whenever two groups arrive at the same state, because
//! each chunk is kept sorted and run-length-merged. Deterministic
//! schedules (the paper's §5.1/§5.2 scenarios, Fig. 2 cohorts) therefore
//! keep `#cohorts == #classes` forever, making million-validator ×
//! 5000-epoch runs interactive.
//!
//! # Copy-on-write forking
//!
//! Every bulky component sits behind shared storage, so `clone()` — the
//! operation behind a partition `Split` and behind the search driver's
//! epoch checkpoints — is O(#classes + #epochs/1024), not O(state):
//!
//! * each class chunk is an `Arc<Vec<(MemberState, u64)>>`; a mutation
//!   replaces only the touched class's `Arc`, and an epoch step that
//!   leaves a chunk bit-identical (e.g. a fully-exited class) keeps the
//!   old allocation, so sibling branches go on sharing it;
//! * the per-epoch checkpoint roots live in a [`PrefixVec`], which
//!   freezes every full 1024-entry prefix block behind an `Arc`;
//! * the slashings ring buffer is an `Arc<Vec<Gwei>>` mutated through
//!   `Arc::make_mut` only when a value actually changes (the all-zero
//!   ring that every run in this repo carries is never copied).
//!
//! [`CohortState::shared_chunks`] makes the sharing observable, and the
//! aliasing unit tests below pin that post-fork mutations never leak into
//! a sibling.

use std::sync::Arc;

use ethpos_crypto::hash_u64;
use ethpos_types::{ChainConfig, Checkpoint, Epoch, Gwei, Root, Slot};

use crate::backend::{
    ClassSpec, ClassStats, Fragmentation, MemberState, StateBackend, StateSnapshot,
};
use crate::epoch_metrics::stage_timer;
use crate::participation::{
    ParticipationFlags, TIMELY_HEAD_FLAG_INDEX, TIMELY_SOURCE_FLAG_INDEX, TIMELY_TARGET_FLAG_INDEX,
};
use crate::prefix_vec::PrefixVec;
use crate::rewards::integer_sqrt;
use crate::validator::FAR_FUTURE_EPOCH;

/// One class's cohorts: sorted, run-length-merged `(state, count)` runs
/// behind shared storage.
type Chunk = Arc<Vec<(MemberState, u64)>>;

/// Restores a chunk's canonical form: sorted by the [`MemberState`]
/// ordering with equal adjacent states merged (summing counts) — the
/// same normal form a `BTreeMap<(class, state), count>` would produce.
fn canonicalize(runs: &mut Vec<(MemberState, u64)>) {
    runs.sort_unstable_by_key(|run| run.0);
    let mut write = 0;
    for read in 0..runs.len() {
        if write > 0 && runs[write - 1].0 == runs[read].0 {
            runs[write - 1].1 += runs[read].1;
        } else {
            runs[write] = runs[read];
            write += 1;
        }
    }
    runs.truncate(write);
}

/// Maps every run of `chunk` through `f`, re-canonicalizes, and swaps in
/// a fresh allocation — unless `f` fixes every state, in which case the
/// existing `Arc` (and any sharing with sibling branches) is kept.
fn transform_chunk(chunk: &mut Chunk, mut f: impl FnMut(&MemberState) -> MemberState) {
    let mut changed = false;
    let mut next: Vec<(MemberState, u64)> = Vec::with_capacity(chunk.len());
    for &(m, count) in chunk.iter() {
        let mapped = f(&m);
        changed |= mapped != m;
        next.push((mapped, count));
    }
    if !changed {
        return;
    }
    canonicalize(&mut next);
    *chunk = Arc::new(next);
}

/// Cohort-compressed beacon state: per-class `(state, count)` chunks plus
/// the global finality bookkeeping, processed with exact spec integer
/// arithmetic. Cloning is copy-on-write (see the module docs), so forking
/// a partition branch or checkpointing a run is cheap.
///
/// # Example
///
/// A million validators cost the same as ten when they share behaviour:
///
/// ```
/// use ethpos_state::backend::{ClassSpec, StateBackend};
/// use ethpos_state::{CohortState, ParticipationFlags};
/// use ethpos_types::ChainConfig;
///
/// let config = ChainConfig::paper();
/// let classes = [
///     ClassSpec::full_stake(600_000, &config),
///     ClassSpec::full_stake(400_000, &config),
/// ];
/// let mut state = CohortState::from_classes(config, &classes);
/// for _ in 0..100 {
///     state.mark_class(0, ParticipationFlags::all());
///     state.advance_epoch(None);
/// }
/// assert_eq!(state.num_cohorts(), 2); // deterministic schedule: no splits
/// assert!(state.is_in_inactivity_leak()); // 60% < 2/3 never justifies
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CohortState {
    config: ChainConfig,
    slot: Slot,
    num_classes: usize,
    /// One chunk per class (index = class), each sorted and run-length
    /// merged under the canonical [`MemberState`] ordering.
    chunks: Vec<Chunk>,
    justification_bits: [bool; 4],
    previous_justified: Checkpoint,
    current_justified: Checkpoint,
    finalized: Checkpoint,
    /// Ring buffer of slashed effective balance per epoch (shared until
    /// a nonzero write forces a copy).
    slashings: Arc<Vec<Gwei>>,
    /// Cached sum of the `slashings` ring, maintained at every ring
    /// write — the slashings pass needs the sum each epoch, and scanning
    /// the 8192-entry ring dominated the epoch cost for small cohort
    /// counts.
    slashings_sum: Gwei,
    /// Checkpoint root at the start of each epoch (index = epoch).
    epoch_roots: PrefixVec<Root>,
    genesis_root: Root,
}

impl CohortState {
    /// Number of distinct cohorts currently tracked.
    pub fn num_cohorts(&self) -> usize {
        self.chunks.iter().map(|c| c.len()).sum()
    }

    /// Current slot (always an epoch start).
    pub fn slot(&self) -> Slot {
        self.slot
    }

    /// Previous epoch (genesis-floored).
    pub fn previous_epoch(&self) -> Epoch {
        self.current_epoch().prev()
    }

    /// Epochs since finalization, measured at the previous epoch (spec
    /// `get_finality_delay`).
    pub fn finality_delay(&self) -> u64 {
        self.previous_epoch() - self.finalized.epoch
    }

    /// True if the chain is in an inactivity leak.
    pub fn is_in_inactivity_leak(&self) -> bool {
        self.finality_delay() > self.config.min_epochs_to_inactivity_penalty
    }

    /// Genesis block root.
    pub fn genesis_root(&self) -> Root {
        self.genesis_root
    }

    /// Number of class chunks physically shared (same allocation) with
    /// `other` — nonzero exactly when copy-on-write sharing is engaged
    /// between two forks of the same state.
    pub fn shared_chunks(&self, other: &CohortState) -> usize {
        self.chunks
            .iter()
            .zip(&other.chunks)
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }

    /// Number of frozen epoch-root blocks shared with `other` (see
    /// [`PrefixVec::shared_blocks_with`]).
    pub fn shared_epoch_root_blocks(&self, other: &CohortState) -> usize {
        self.epoch_roots.shared_blocks_with(&other.epoch_roots)
    }

    /// Rebuilds every class chunk by transforming each cohort's member
    /// state, merging cohorts that land on the same state. Chunks that
    /// `f` leaves untouched keep their shared allocation.
    fn transform(&mut self, mut f: impl FnMut(u32, &MemberState) -> MemberState) {
        for (class, chunk) in self.chunks.iter_mut().enumerate() {
            transform_chunk(chunk, |m| f(class as u32, m));
        }
    }

    /// Sum of `count × f(member)` over all cohorts (u64, spec-width).
    fn sum_over(&self, mut f: impl FnMut(&MemberState) -> u64) -> u64 {
        self.chunks
            .iter()
            .flat_map(|chunk| chunk.iter())
            .map(|(m, count)| count * f(m))
            .sum()
    }

    /// Spec `get_total_active_balance` (increment-floored).
    fn total_active_balance_inner(&self) -> Gwei {
        let epoch = self.current_epoch();
        let total = self.sum_over(|m| {
            if m.is_active_at(epoch) {
                m.effective_balance.as_u64()
            } else {
                0
            }
        });
        Gwei::new(total).max(self.config.effective_balance_increment)
    }

    /// Spec `unslashed_participating_target_balance` for the previous or
    /// current epoch.
    fn target_balance(&self, epoch: Epoch, previous: bool) -> Gwei {
        Gwei::new(self.sum_over(|m| {
            let flags = if previous {
                m.previous_flags
            } else {
                m.current_flags
            };
            if !m.slashed && m.is_active_at(epoch) && flags.has_timely_target() {
                m.effective_balance.as_u64()
            } else {
                0
            }
        }))
    }

    // ── epoch processing ────────────────────────────────────────────────
    //
    // The spec's epoch steps run in order: justification & finalization,
    // inactivity updates, rewards & penalties, registry updates,
    // slashings, effective-balance updates, slashings reset,
    // participation-flag rotation. Here the six member-local steps are
    // fused into a single chunk rebuild: every global aggregate a later
    // step reads is invariant under the earlier steps' member writes
    // (inactivity touches only scores, rewards only balances, registry
    // sets `exit_epoch` to `current + 1` which keeps the member active
    // *at* `current`), so all aggregates can be computed up front and
    // the per-member updates composed in spec order.

    fn process_epoch(&mut self) {
        // Per-stage wall-clock timing, **sampled every 64th epoch**:
        // this is the workspace's hottest loop (~0.5 µs per epoch on
        // compressed states, so one timed epoch costs nearly as much as
        // an untimed one); the 1-in-64 sample keeps the `obs_overhead`
        // gate comfortably under 3% while the stage histograms stay
        // representative (epoch 0 is always in the sample). Timing is
        // observation-only — the transition itself is identical on both
        // paths.
        let timer = stage_timer("cohort", self.current_epoch().as_u64() & 63 == 0);
        match timer {
            Some(mut t) => {
                self.process_justification_and_finalization();
                t.stage("justification");
                self.process_member_updates();
                t.stage("member_updates");
                self.process_slashings_reset();
                t.stage("slashings_reset");
            }
            None => {
                self.process_justification_and_finalization();
                self.process_member_updates();
                self.process_slashings_reset();
            }
        }
    }

    fn process_justification_and_finalization(&mut self) {
        let current_epoch = self.current_epoch();
        // Spec: skip the first two epochs.
        if current_epoch.as_u64() <= 1 {
            return;
        }
        let previous_epoch = self.previous_epoch();
        let total = self.total_active_balance_inner();
        let previous_target = self.target_balance(previous_epoch, true);
        let current_target = self.target_balance(current_epoch, false);
        let prev_root = self.epoch_roots[previous_epoch.as_u64() as usize];
        let curr_root = self.epoch_roots[current_epoch.as_u64() as usize];

        let old_previous_justified = self.previous_justified;
        let old_current_justified = self.current_justified;

        // Rotate: previous ← current; shift bits.
        self.previous_justified = self.current_justified;
        self.justification_bits.copy_within(0..3, 1);
        self.justification_bits[0] = false;

        if previous_target.as_u64() * 3 >= total.as_u64() * 2 {
            self.current_justified = Checkpoint::new(previous_epoch, prev_root);
            self.justification_bits[1] = true;
        }
        if current_target.as_u64() * 3 >= total.as_u64() * 2 {
            self.current_justified = Checkpoint::new(current_epoch, curr_root);
            self.justification_bits[0] = true;
        }

        // The four finalization rules.
        let bits = self.justification_bits;
        if bits[1] && bits[2] && bits[3] && old_previous_justified.epoch + 3 == current_epoch {
            self.finalized = old_previous_justified;
        }
        if bits[1] && bits[2] && old_previous_justified.epoch + 2 == current_epoch {
            self.finalized = old_previous_justified;
        }
        if bits[0] && bits[1] && bits[2] && old_current_justified.epoch + 2 == current_epoch {
            self.finalized = old_current_justified;
        }
        if bits[0] && bits[1] && old_current_justified.epoch + 1 == current_epoch {
            self.finalized = old_current_justified;
        }
    }

    /// The six member-local epoch steps (inactivity, rewards & penalties,
    /// registry, slashings, effective balance, flag rotation), fused into
    /// one chunk rebuild per class.
    fn process_member_updates(&mut self) {
        let current_epoch = self.current_epoch();
        let previous_epoch = self.previous_epoch();

        // Genesis gating, per the spec: no inactivity or reward settling
        // for the epoch before genesis.
        let settle_previous = current_epoch != Epoch::GENESIS;

        // ── inactivity aggregates ──
        let bias = self.config.inactivity_score_bias;
        let recovery = self.config.inactivity_score_recovery_rate;
        let in_leak = self.is_in_inactivity_leak();

        // ── reward & penalty aggregates (all invariant under the
        //    score-only inactivity writes) ──
        let total_active = self.total_active_balance_inner().as_u64();
        let increment = self.config.effective_balance_increment.as_u64();
        let total_increments = (total_active / increment).max(1);
        let base_per_increment = {
            let factor = self.config.base_reward_factor;
            increment * factor / integer_sqrt(total_active).max(1)
        };
        let denominator = self.config.weight_denominator;
        let leak_denominator =
            self.config.inactivity_score_bias * self.config.inactivity_penalty_quotient;
        let paper_semantics = self.config.paper_inactivity_penalties;
        let flag_indices = [
            TIMELY_SOURCE_FLAG_INDEX,
            TIMELY_TARGET_FLAG_INDEX,
            TIMELY_HEAD_FLAG_INDEX,
        ];
        let weights = [
            self.config.timely_source_weight,
            self.config.timely_target_weight,
            self.config.timely_head_weight,
        ];
        // Participating increments per flag (unslashed, previous epoch).
        let mut participating_increments = [0u64; 3];
        for chunk in &self.chunks {
            for (m, count) in chunk.iter() {
                if m.slashed || !m.is_active_at(previous_epoch) {
                    continue;
                }
                for (k, &flag) in flag_indices.iter().enumerate() {
                    if m.previous_flags.has(flag) {
                        participating_increments[k] +=
                            count * (m.effective_balance.as_u64() / increment);
                    }
                }
            }
        }

        // ── registry aggregates ──
        let ejection_balance = self.config.ejection_balance;
        let exit_epoch = current_epoch + 1;

        // ── slashing aggregates (the ring is untouched by member steps,
        //    and the total active balance is invariant as argued above) ──
        let vector = self.config.epochs_per_slashings_vector;
        let slashings_sum: u64 = self.slashings_sum.as_u64();
        let adjusted = slashings_sum
            .saturating_mul(self.config.proportional_slashing_multiplier)
            .min(total_active);

        // ── effective-balance hysteresis aggregates ──
        let hysteresis_increment = self
            .config
            .effective_balance_increment
            .integer_div(self.config.hysteresis_quotient);
        let downward =
            Gwei::new(hysteresis_increment.as_u64() * self.config.hysteresis_downward_multiplier);
        let upward =
            Gwei::new(hysteresis_increment.as_u64() * self.config.hysteresis_upward_multiplier);
        let max_effective = self.config.max_effective_balance;

        self.transform(|_, m| {
            let mut m = *m;
            if settle_previous {
                let eligible = m.is_active_at(previous_epoch)
                    || (m.slashed && previous_epoch + 1 < m.withdrawable_epoch);
                if eligible {
                    // Inactivity-score update (paper Eq. 1).
                    let timely = !m.slashed && m.previous_flags.has_timely_target();
                    let mut score = m.inactivity_score;
                    if timely {
                        score -= score.min(1);
                    } else {
                        score += bias;
                    }
                    if !in_leak {
                        score -= score.min(recovery);
                    }
                    m.inactivity_score = score;

                    // Rewards & penalties, reading the just-updated score.
                    let increments_i = m.effective_balance.as_u64() / increment;
                    let base_reward = increments_i * base_per_increment;
                    let mut reward = 0u64;
                    let mut penalty = 0u64;
                    for (k, &flag) in flag_indices.iter().enumerate() {
                        let participated = !m.slashed && m.previous_flags.has(flag);
                        if participated {
                            if !in_leak {
                                let numerator =
                                    base_reward * weights[k] * participating_increments[k];
                                reward += numerator / (total_increments * denominator);
                            }
                            // In a leak: no reward (paper §4).
                        } else if flag != TIMELY_HEAD_FLAG_INDEX {
                            penalty += base_reward * weights[k] / denominator;
                        }
                    }
                    let pays_inactivity = if paper_semantics {
                        m.slashed || m.inactivity_score > 0
                    } else {
                        m.slashed || !m.previous_flags.has(TIMELY_TARGET_FLAG_INDEX)
                    };
                    if pays_inactivity {
                        let penalty_numerator =
                            m.effective_balance.as_u64() as u128 * m.inactivity_score as u128;
                        penalty += (penalty_numerator / leak_denominator as u128) as u64;
                    }
                    // Mirror dense order: increase_balance then saturating
                    // decrease_balance.
                    m.balance = (m.balance + Gwei::new(reward)).saturating_sub(Gwei::new(penalty));
                }
            }

            // Registry: ejection at the 16-ETH effective-balance floor.
            if m.is_active_at(current_epoch)
                && m.effective_balance <= ejection_balance
                && m.exit_epoch == FAR_FUTURE_EPOCH
            {
                m.exit_epoch = exit_epoch;
                if m.withdrawable_epoch == FAR_FUTURE_EPOCH {
                    m.withdrawable_epoch = exit_epoch + 256;
                }
            }

            // Correlation slashing penalty (spec `process_slashings`),
            // reading the post-registry withdrawable epoch.
            if adjusted != 0 && m.slashed && current_epoch + vector / 2 == m.withdrawable_epoch {
                let penalty_numerator =
                    (m.effective_balance.as_u64() / increment) as u128 * adjusted as u128;
                let penalty = (penalty_numerator / total_active as u128) as u64 * increment;
                m.balance = m.balance.saturating_sub(Gwei::new(penalty));
            }

            // Effective-balance hysteresis, reading the settled balance.
            if m.balance + downward < m.effective_balance
                || m.effective_balance + upward < m.balance
            {
                // `ChainConfig::snapped_effective_balance`, inlined on the
                // captured constants.
                let bal = m.balance.as_u64();
                m.effective_balance = Gwei::new(bal - bal % increment).min(max_effective);
            }

            // Participation-flag rotation.
            m.previous_flags = m.current_flags;
            m.current_flags = ParticipationFlags::EMPTY;
            m
        });
    }

    fn process_slashings_reset(&mut self) {
        let next = self.current_epoch() + 1;
        let len = self.config.epochs_per_slashings_vector;
        let idx = (next.as_u64() % len) as usize;
        // Writing a zero over a zero is the common case (nothing in the
        // paper's scenarios slashes); skip it to keep the ring shared
        // between forks instead of forcing a copy-on-write clone.
        if self.slashings[idx] != Gwei::ZERO {
            self.slashings_sum -= self.slashings[idx];
            Arc::make_mut(&mut self.slashings)[idx] = Gwei::ZERO;
        }
    }
}

impl StateBackend for CohortState {
    fn from_classes(config: ChainConfig, classes: &[ClassSpec]) -> Self {
        let total: u64 = classes.iter().map(|c| c.count).sum();
        let genesis_root = hash_u64(&[0x67_656e_6573_6973, total]); // "genesis"
        let chunks = classes
            .iter()
            .map(|spec| {
                if spec.count == 0 {
                    return Arc::new(Vec::new());
                }
                let member = MemberState {
                    balance: spec.balance,
                    effective_balance: config.snapped_effective_balance(spec.balance),
                    inactivity_score: 0,
                    slashed: false,
                    activation_epoch: Epoch::GENESIS,
                    exit_epoch: FAR_FUTURE_EPOCH,
                    withdrawable_epoch: FAR_FUTURE_EPOCH,
                    previous_flags: ParticipationFlags::EMPTY,
                    current_flags: ParticipationFlags::EMPTY,
                };
                Arc::new(vec![(member, spec.count)])
            })
            .collect();
        let genesis_checkpoint = Checkpoint::genesis(genesis_root);
        CohortState {
            slashings: Arc::new(vec![
                Gwei::ZERO;
                config.epochs_per_slashings_vector as usize
            ]),
            slashings_sum: Gwei::ZERO,
            config,
            slot: Slot::GENESIS,
            num_classes: classes.len(),
            chunks,
            justification_bits: [false; 4],
            previous_justified: genesis_checkpoint,
            current_justified: genesis_checkpoint,
            finalized: genesis_checkpoint,
            epoch_roots: std::iter::once(genesis_root).collect(),
            genesis_root,
        }
    }

    fn config(&self) -> &ChainConfig {
        &self.config
    }

    fn current_epoch(&self) -> Epoch {
        self.slot.epoch(self.config.slots_per_epoch)
    }

    fn current_justified_checkpoint(&self) -> Checkpoint {
        self.current_justified
    }

    fn finalized_checkpoint(&self) -> Checkpoint {
        self.finalized
    }

    fn total_active_balance(&self) -> Gwei {
        self.total_active_balance_inner()
    }

    fn current_target_balance(&self) -> Gwei {
        self.target_balance(self.current_epoch(), false)
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn class_stats(&self, class: usize) -> ClassStats {
        let epoch = self.current_epoch();
        let mut stats = ClassStats::default();
        for (m, count) in self.chunks[class].iter() {
            stats.total += count;
            if m.is_active_at(epoch) {
                stats.active += count;
                stats.active_stake += Gwei::new(count * m.effective_balance.as_u64());
            } else {
                stats.exited += count;
            }
        }
        stats
    }

    fn class_floor(&self, class: usize) -> Option<MemberState> {
        // Chunks are sorted: the first run is the floor.
        self.chunks
            .get(class)
            .and_then(|chunk| chunk.first())
            .map(|&(m, _)| m)
    }

    fn mark_class(&mut self, class: usize, flags: ParticipationFlags) {
        let epoch = self.current_epoch();
        transform_chunk(&mut self.chunks[class], |m| {
            if m.is_active_at(epoch) {
                MemberState {
                    current_flags: m.current_flags.union(flags),
                    ..*m
                }
            } else {
                *m
            }
        });
    }

    fn mark_class_sampled(
        &mut self,
        class: usize,
        flags: ParticipationFlags,
        draw: &mut dyn FnMut() -> bool,
    ) {
        let epoch = self.current_epoch();
        let chunk = &mut self.chunks[class];
        let mut next: Vec<(MemberState, u64)> = Vec::with_capacity(chunk.len() + 1);
        for &(m, count) in chunk.iter() {
            // Consume one draw per member — exited members included, so
            // a caller feeding both partition branches from one shared
            // membership buffer stays index-aligned (see the trait doc).
            let drawn = (0..count).filter(|_| draw()).count();
            let drawn = drawn as u64;
            if !m.is_active_at(epoch) {
                next.push((m, count));
                continue;
            }
            // Split the cohort: `drawn` members get the flags, the rest
            // keep their state. Equal results re-merge on canonicalize.
            if drawn > 0 {
                let marked = MemberState {
                    current_flags: m.current_flags.union(flags),
                    ..m
                };
                next.push((marked, drawn));
            }
            if drawn < count {
                next.push((m, count - drawn));
            }
        }
        canonicalize(&mut next);
        if next != **chunk {
            *chunk = Arc::new(next);
        }
    }

    fn mark_class_counted(
        &mut self,
        class: usize,
        flags: ParticipationFlags,
        sample: &mut dyn FnMut(u64) -> u64,
    ) {
        let epoch = self.current_epoch();
        let chunk = &mut self.chunks[class];
        let mut next: Vec<(MemberState, u64)> = Vec::with_capacity(chunk.len() + 1);
        for &(m, count) in chunk.iter() {
            // Exited cohorts consume no draw (trait contract): the
            // stream is one count draw per *active* cohort.
            if !m.is_active_at(epoch) {
                next.push((m, count));
                continue;
            }
            let drawn = sample(count).min(count);
            // Split the cohort: `drawn` members get the flags, the rest
            // keep their state. Equal results re-merge on canonicalize.
            if drawn > 0 {
                let marked = MemberState {
                    current_flags: m.current_flags.union(flags),
                    ..m
                };
                next.push((marked, drawn));
            }
            if drawn < count {
                next.push((m, count - drawn));
            }
        }
        canonicalize(&mut next);
        if next != **chunk {
            *chunk = Arc::new(next);
        }
    }

    fn advance_epoch(&mut self, next_checkpoint_root: Option<Root>) {
        self.process_epoch();
        let spe = self.config.slots_per_epoch;
        self.slot = (self.current_epoch() + 1).start_slot(spe);
        let carried = *self.epoch_roots.last().expect("never empty");
        self.epoch_roots
            .push(next_checkpoint_root.unwrap_or(carried));
    }

    fn snapshot(&self) -> StateSnapshot {
        StateSnapshot {
            slot: self.slot,
            justification_bits: self.justification_bits,
            previous_justified: self.previous_justified,
            current_justified: self.current_justified,
            finalized: self.finalized,
            slashings: (*self.slashings).clone(),
            classes: self.chunks.iter().map(|c| (**c).clone()).collect(),
        }
    }

    fn class_balance(&self, class: usize) -> Gwei {
        Gwei::new(
            self.chunks[class]
                .iter()
                .map(|(m, count)| m.balance.as_u64() * count)
                .sum(),
        )
    }

    fn shared_chunks_with(&self, other: &Self) -> usize {
        self.shared_chunks(other)
    }

    fn fragmentation(&self) -> Option<Fragmentation> {
        Some(Fragmentation {
            cohorts: self.num_cohorts() as u64,
            classes: self.num_classes as u64,
            max_cohorts_per_class: self.chunks.iter().map(|c| c.len()).max().unwrap_or(0) as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::DenseState;

    fn full(count: u64) -> ClassSpec {
        ClassSpec::full_stake(count, &ChainConfig::minimal())
    }

    /// Drives a dense and a cohort backend through the same schedule and
    /// asserts equal snapshots after every epoch.
    fn assert_equivalent(
        config: ChainConfig,
        classes: &[ClassSpec],
        epochs: u64,
        schedule: impl Fn(u64, usize) -> bool,
    ) {
        let mut dense = DenseState::from_classes(config.clone(), classes);
        let mut cohort = CohortState::from_classes(config, classes);
        assert_eq!(dense.snapshot(), cohort.snapshot(), "genesis");
        for epoch in 0..epochs {
            for class in 0..classes.len() {
                if schedule(epoch, class) {
                    dense.mark_class(class, ParticipationFlags::all());
                    cohort.mark_class(class, ParticipationFlags::all());
                }
            }
            dense.advance_epoch(None);
            cohort.advance_epoch(None);
            assert_eq!(dense.snapshot(), cohort.snapshot(), "epoch {epoch}");
        }
    }

    #[test]
    fn healthy_chain_matches_dense_and_finalizes() {
        let classes = [full(16)];
        let mut cohort = CohortState::from_classes(ChainConfig::minimal(), &classes);
        for _ in 0..6 {
            cohort.mark_class(0, ParticipationFlags::all());
            cohort.advance_epoch(None);
        }
        assert_eq!(cohort.finalized_checkpoint().epoch, Epoch::new(4));
        assert!(!cohort.is_in_inactivity_leak());
        assert_equivalent(ChainConfig::minimal(), &classes, 8, |_, _| true);
    }

    #[test]
    fn idle_chain_leaks_identically() {
        assert_equivalent(ChainConfig::minimal(), &[full(8), full(8)], 12, |_, _| {
            false
        });
    }

    #[test]
    fn mixed_schedule_matches_dense() {
        // Class 0 always attests, class 1 every other epoch, class 2 never
        // — the Fig. 2 cohort mix, under both penalty semantics.
        for config in [ChainConfig::minimal(), ChainConfig::paper()] {
            assert_equivalent(
                config,
                &[full(1), full(1), full(8)],
                24,
                |epoch, class| match class {
                    0 => true,
                    1 => epoch % 2 == 0,
                    _ => false,
                },
            );
        }
    }

    #[test]
    fn genesis_ejection_boundary_matches_dense() {
        // 16.5 ETH snaps to a 16-ETH effective balance at genesis, which
        // is at the ejection threshold: the class exits at epoch 1.
        let low = ClassSpec {
            count: 4,
            balance: Gwei::from_eth_f64(16.5),
        };
        assert_equivalent(ChainConfig::minimal(), &[full(8), low], 6, |_, c| c == 0);
        let mut cohort = CohortState::from_classes(ChainConfig::minimal(), &[full(8), low]);
        for _ in 0..3 {
            cohort.mark_class(0, ParticipationFlags::all());
            cohort.advance_epoch(None);
        }
        let stats = cohort.class_stats(1);
        assert_eq!(stats.exited, 4);
        assert_eq!(cohort.class_stats(0).exited, 0);
    }

    #[test]
    fn sampled_marking_splits_and_merges_cohorts() {
        let mut cohort = CohortState::from_classes(ChainConfig::minimal(), &[full(10)]);
        let mut i = 0;
        cohort.mark_class_sampled(0, ParticipationFlags::all(), &mut || {
            i += 1;
            i % 2 == 0
        });
        assert_eq!(cohort.num_cohorts(), 2); // split: 5 marked, 5 not
        let marked_stake = cohort.current_target_balance();
        assert_eq!(marked_stake, Gwei::from_eth_u64(5 * 32));
        // One epoch later the flags rotate; scores of the two halves
        // diverge, so the split persists…
        cohort.advance_epoch(None);
        assert_eq!(cohort.num_cohorts(), 2);
        // …until their states coincide again (everyone idle long enough
        // outside a leak recovers to score 0 — here both halves are again
        // distinct only through scores, so marking everyone keeps 2).
        let snap = cohort.snapshot();
        let total: u64 = snap.classes[0].iter().map(|(_, c)| c).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn counted_marking_splits_by_count_and_skips_exited_cohorts() {
        let mut cohort = CohortState::from_classes(ChainConfig::minimal(), &[full(10)]);
        let mut calls = Vec::new();
        cohort.mark_class_counted(0, ParticipationFlags::all(), &mut |count| {
            calls.push(count);
            3
        });
        // One count draw for the single genesis cohort, split 3 / 7.
        assert_eq!(calls, vec![10]);
        assert_eq!(cohort.num_cohorts(), 2);
        assert_eq!(cohort.current_target_balance(), Gwei::from_eth_u64(3 * 32));

        // An exited cohort consumes no draw: eject a sub-16-ETH class
        // and verify only the live cohorts are offered.
        let low = ClassSpec {
            count: 4,
            balance: Gwei::from_eth_f64(16.5),
        };
        let mut cohort = CohortState::from_classes(ChainConfig::minimal(), &[full(8), low]);
        for _ in 0..3 {
            cohort.mark_class(0, ParticipationFlags::all());
            cohort.advance_epoch(None);
        }
        assert_eq!(cohort.class_stats(1).exited, 4);
        let mut calls = 0u64;
        cohort.mark_class_counted(1, ParticipationFlags::all(), &mut |_| {
            calls += 1;
            0
        });
        assert_eq!(calls, 0, "exited cohorts must not consume count draws");
    }

    #[test]
    fn counted_marking_overdraw_is_clamped_to_cohort_size() {
        let mut cohort = CohortState::from_classes(ChainConfig::minimal(), &[full(5)]);
        cohort.mark_class_counted(0, ParticipationFlags::all(), &mut |_| u64::MAX);
        assert_eq!(cohort.num_cohorts(), 1);
        assert_eq!(cohort.current_target_balance(), Gwei::from_eth_u64(5 * 32));
    }

    #[test]
    fn class_floor_reads_smallest_member() {
        let classes = [full(4), full(2)];
        let mut cohort = CohortState::from_classes(ChainConfig::minimal(), &classes);
        cohort.mark_class(0, ParticipationFlags::all());
        for _ in 0..6 {
            cohort.advance_epoch(None);
            cohort.mark_class(0, ParticipationFlags::all());
        }
        let active = cohort.class_floor(0).unwrap();
        let idle = cohort.class_floor(1).unwrap();
        assert!(active.balance >= idle.balance);
        assert_eq!(cohort.class_floor(2), None);
    }

    // ── copy-on-write aliasing ──────────────────────────────────────────

    #[test]
    fn fork_shares_every_chunk_until_a_mutation() {
        let classes = [full(330_000), full(335_000), full(335_000)];
        let parent = CohortState::from_classes(ChainConfig::paper(), &classes);
        let fork = parent.clone();
        // A forked million-validator state shares all of its storage.
        assert_eq!(parent.shared_chunks(&fork), 3);
        // Mutating one class in the fork unshares exactly that chunk.
        let mut fork = fork;
        fork.mark_class(1, ParticipationFlags::all());
        assert_eq!(parent.shared_chunks(&fork), 2);
    }

    #[test]
    fn mutation_after_fork_never_leaks_into_the_sibling() {
        let classes = [full(4), full(4)];
        let mut parent = CohortState::from_classes(ChainConfig::minimal(), &classes);
        for _ in 0..3 {
            parent.mark_class(0, ParticipationFlags::all());
            parent.mark_class(1, ParticipationFlags::all());
            parent.advance_epoch(None);
        }
        let before = parent.snapshot();
        let mut sibling = parent.clone();
        // Diverge the sibling hard: different marking, several epochs.
        for _ in 0..5 {
            sibling.mark_class(0, ParticipationFlags::all());
            sibling.advance_epoch(None);
        }
        assert_eq!(parent.snapshot(), before, "sibling mutations leaked");
        assert_ne!(sibling.snapshot(), before);
        // And the parent advancing afterwards does not disturb the sibling.
        let sibling_snap = sibling.snapshot();
        parent.mark_class(1, ParticipationFlags::all());
        parent.advance_epoch(None);
        assert_eq!(sibling.snapshot(), sibling_snap);
    }

    #[test]
    fn stable_chunks_stay_shared_across_epochs() {
        // Class 1 is ejected early (16-ETH effective balance at genesis);
        // once exited and idle its chunk is a fixed point of epoch
        // processing, so two forks keep sharing it while their active
        // classes diverge.
        let low = ClassSpec {
            count: 4,
            balance: Gwei::from_eth_f64(16.5),
        };
        let mut parent = CohortState::from_classes(ChainConfig::minimal(), &[full(8), low]);
        for _ in 0..4 {
            parent.mark_class(0, ParticipationFlags::all());
            parent.advance_epoch(None);
        }
        assert_eq!(parent.class_stats(1).exited, 4);
        let mut fork = parent.clone();
        for _ in 0..3 {
            fork.mark_class(0, ParticipationFlags::all());
            fork.advance_epoch(None);
        }
        // The exited class's chunk is still the parent's allocation.
        assert!(parent.shared_chunks(&fork) >= 1);
        assert_eq!(parent.snapshot().classes[1], fork.snapshot().classes[1]);
    }

    #[test]
    fn cow_state_equals_its_fork_logically() {
        let mut a = CohortState::from_classes(ChainConfig::minimal(), &[full(6)]);
        a.mark_class(0, ParticipationFlags::all());
        a.advance_epoch(None);
        let b = a.clone();
        assert_eq!(a, b);
        let mut c = b.clone();
        c.advance_epoch(None);
        assert_ne!(a, c);
    }
}

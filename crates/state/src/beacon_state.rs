//! The [`BeaconState`] container and its balance/registry helpers.

use serde::{Deserialize, Serialize};

use ethpos_crypto::hash_u64;
use ethpos_types::{ChainConfig, Checkpoint, Epoch, Gwei, Root, Slot, ValidatorIndex};

use crate::error::StateError;
use crate::participation::ParticipationFlags;
use crate::validator::Validator;

/// The beacon chain state: one branch's view of the registry, balances,
/// participation and finality bookkeeping.
///
/// Field layout follows the consensus spec (Altair/Bellatrix); fields that
/// play no role in the paper's analysis (randao mixes, historical
/// summaries, execution payload headers, …) are omitted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BeaconState {
    config: ChainConfig,
    slot: Slot,
    /// The validator registry.
    validators: Vec<Validator>,
    /// Actual balances in Gwei (the paper's `s_i(t)`).
    balances: Vec<Gwei>,
    /// Inactivity scores (the paper's `I_i(t)`).
    inactivity_scores: Vec<u64>,
    previous_epoch_participation: Vec<ParticipationFlags>,
    current_epoch_participation: Vec<ParticipationFlags>,
    /// Justification bits for the last four epochs (bit 0 = current).
    justification_bits: [bool; 4],
    previous_justified_checkpoint: Checkpoint,
    current_justified_checkpoint: Checkpoint,
    finalized_checkpoint: Checkpoint,
    /// Ring buffer of slashed effective balance per epoch.
    slashings: Vec<Gwei>,
    /// Latest block root at each slot (index = slot); missed slots repeat
    /// the previous root, like spec `get_block_root_at_slot`.
    block_roots: Vec<Root>,
    genesis_root: Root,
}

impl BeaconState {
    /// Creates a genesis state with `n` validators at the maximum
    /// effective balance, all active from epoch 0.
    pub fn genesis(config: ChainConfig, n: usize) -> Self {
        let balance = config.max_effective_balance;
        BeaconState::genesis_with_balances(config, &vec![balance; n])
    }

    /// Creates a genesis state with one validator per entry of `balances`,
    /// all active from epoch 0. Each effective balance follows the spec's
    /// deposit rule: the actual balance snapped down to a whole
    /// effective-balance increment, capped at the maximum.
    pub fn genesis_with_balances(config: ChainConfig, balances: &[Gwei]) -> Self {
        let n = balances.len();
        let genesis_root = hash_u64(&[0x67_656e_6573_6973, n as u64]); // "genesis"
        let validators: Vec<Validator> = balances
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let mut v = Validator::genesis(i as u64, config.max_effective_balance);
                v.effective_balance = config.snapped_effective_balance(*b);
                v
            })
            .collect();
        let balances = balances.to_vec();
        let genesis_checkpoint = Checkpoint::genesis(genesis_root);
        let slashings = vec![Gwei::ZERO; config.epochs_per_slashings_vector as usize];
        BeaconState {
            config,
            slot: Slot::GENESIS,
            validators,
            balances,
            inactivity_scores: vec![0; n],
            previous_epoch_participation: vec![ParticipationFlags::EMPTY; n],
            current_epoch_participation: vec![ParticipationFlags::EMPTY; n],
            justification_bits: [false; 4],
            previous_justified_checkpoint: genesis_checkpoint,
            current_justified_checkpoint: genesis_checkpoint,
            finalized_checkpoint: genesis_checkpoint,
            slashings,
            block_roots: vec![genesis_root],
            genesis_root,
        }
    }

    // ── accessors ────────────────────────────────────────────────────────

    /// Protocol constants in force.
    pub fn config(&self) -> &ChainConfig {
        &self.config
    }

    /// Current slot.
    pub fn slot(&self) -> Slot {
        self.slot
    }

    /// Current epoch.
    pub fn current_epoch(&self) -> Epoch {
        self.slot.epoch(self.config.slots_per_epoch)
    }

    /// Previous epoch (genesis-floored, spec `get_previous_epoch`).
    pub fn previous_epoch(&self) -> Epoch {
        self.current_epoch().prev()
    }

    /// The validator registry.
    pub fn validators(&self) -> &[Validator] {
        &self.validators
    }

    /// Number of registered validators.
    pub fn num_validators(&self) -> usize {
        self.validators.len()
    }

    /// Actual balances.
    pub fn balances(&self) -> &[Gwei] {
        &self.balances
    }

    /// Actual balance of one validator.
    pub fn balance(&self, index: ValidatorIndex) -> Gwei {
        self.balances[index.as_usize()]
    }

    /// Inactivity scores.
    pub fn inactivity_scores(&self) -> &[u64] {
        &self.inactivity_scores
    }

    /// Inactivity score of one validator.
    pub fn inactivity_score(&self, index: ValidatorIndex) -> u64 {
        self.inactivity_scores[index.as_usize()]
    }

    /// Finalized checkpoint.
    pub fn finalized_checkpoint(&self) -> Checkpoint {
        self.finalized_checkpoint
    }

    /// Current justified checkpoint.
    pub fn current_justified_checkpoint(&self) -> Checkpoint {
        self.current_justified_checkpoint
    }

    /// Previous justified checkpoint.
    pub fn previous_justified_checkpoint(&self) -> Checkpoint {
        self.previous_justified_checkpoint
    }

    /// Justification bits (bit 0 = most recent epoch).
    pub fn justification_bits(&self) -> [bool; 4] {
        self.justification_bits
    }

    /// Genesis block root.
    pub fn genesis_root(&self) -> Root {
        self.genesis_root
    }

    /// The slashings ring buffer (slashed effective balance per epoch).
    pub fn slashings(&self) -> &[Gwei] {
        &self.slashings
    }

    /// Participation flags of `index` for the previous epoch.
    pub fn previous_participation(&self, index: ValidatorIndex) -> ParticipationFlags {
        self.previous_epoch_participation[index.as_usize()]
    }

    /// Participation flags of `index` for the current epoch.
    pub fn current_participation(&self, index: ValidatorIndex) -> ParticipationFlags {
        self.current_epoch_participation[index.as_usize()]
    }

    // ── registry & balance queries ───────────────────────────────────────

    /// Indices of validators active at `epoch`.
    pub fn active_validator_indices(&self, epoch: Epoch) -> Vec<ValidatorIndex> {
        self.validators
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_active_at(epoch))
            .map(|(i, _)| ValidatorIndex::from(i))
            .collect()
    }

    /// Sum of effective balances of validators active in the current
    /// epoch, floored at one effective-balance increment (spec
    /// `get_total_active_balance`).
    pub fn total_active_balance(&self) -> Gwei {
        let epoch = self.current_epoch();
        let total: Gwei = self
            .validators
            .iter()
            .filter(|v| v.is_active_at(epoch))
            .map(|v| v.effective_balance)
            .sum();
        total.max(self.config.effective_balance_increment)
    }

    /// Sum of effective balances of **unslashed** validators whose
    /// participation flags for `epoch` (previous or current only) include
    /// the timely-target flag — the FFG voting weight behind that epoch's
    /// checkpoint.
    pub fn unslashed_participating_target_balance(&self, epoch: Epoch) -> Gwei {
        // Check the current epoch first: at genesis, current == previous.
        let flags = if epoch == self.current_epoch() {
            &self.current_epoch_participation
        } else {
            debug_assert_eq!(epoch, self.previous_epoch());
            &self.previous_epoch_participation
        };
        let total: Gwei = self
            .validators
            .iter()
            .zip(flags.iter())
            .filter(|(v, f)| !v.slashed && v.is_active_at(epoch) && f.has_timely_target())
            .map(|(v, _)| v.effective_balance)
            .sum();
        total
    }

    /// Spec `increase_balance`.
    pub fn increase_balance(&mut self, index: ValidatorIndex, delta: Gwei) {
        self.balances[index.as_usize()] += delta;
    }

    /// Spec `decrease_balance` (saturating at zero).
    pub fn decrease_balance(&mut self, index: ValidatorIndex, delta: Gwei) {
        self.balances[index.as_usize()] -= delta;
    }

    /// True if the chain is in an inactivity leak: more than
    /// `min_epochs_to_inactivity_penalty` epochs since finalization
    /// (spec `is_in_inactivity_leak`).
    pub fn is_in_inactivity_leak(&self) -> bool {
        self.finality_delay() > self.config.min_epochs_to_inactivity_penalty
    }

    /// Epochs elapsed since the last finalized epoch, measured at the
    /// previous epoch (spec `get_finality_delay`).
    pub fn finality_delay(&self) -> u64 {
        self.previous_epoch() - self.finalized_checkpoint.epoch
    }

    // ── block roots ──────────────────────────────────────────────────────

    /// Latest block root at `slot` (spec `get_block_root_at_slot`).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is in the future of this state.
    pub fn block_root_at_slot(&self, slot: Slot) -> Root {
        self.block_roots[slot.as_u64() as usize]
    }

    /// Checkpoint block root for `epoch` (spec `get_block_root`).
    pub fn block_root_at_epoch_start(&self, epoch: Epoch) -> Root {
        let slot = epoch.start_slot(self.config.slots_per_epoch);
        let idx = (slot.as_u64() as usize).min(self.block_roots.len() - 1);
        self.block_roots[idx]
    }

    /// The most recent block root known to the state.
    pub fn latest_block_root(&self) -> Root {
        *self.block_roots.last().expect("never empty")
    }

    /// Overrides the block root recorded for `slot`.
    ///
    /// Simulation hook: the cohort simulator uses this to install
    /// synthetic per-branch checkpoint roots without building full blocks.
    pub fn set_block_root(&mut self, slot: Slot, root: Root) {
        let idx = slot.as_u64() as usize;
        assert!(
            idx < self.block_roots.len(),
            "cannot set a future block root"
        );
        self.block_roots[idx] = root;
    }

    // ── participation hooks ──────────────────────────────────────────────

    /// Marks `index` with `flags` for the current epoch (merging).
    ///
    /// Simulation hook used by the cohort simulator; block processing sets
    /// the same flags through attestation validation.
    pub fn merge_current_participation(
        &mut self,
        index: ValidatorIndex,
        flags: ParticipationFlags,
    ) {
        let f = &mut self.current_epoch_participation[index.as_usize()];
        *f = f.union(flags);
    }

    /// Marks `index` with `flags` for the previous epoch (merging).
    pub fn merge_previous_participation(
        &mut self,
        index: ValidatorIndex,
        flags: ParticipationFlags,
    ) {
        let f = &mut self.previous_epoch_participation[index.as_usize()];
        *f = f.union(flags);
    }

    // ── slot advancement ─────────────────────────────────────────────────

    /// Advances the state to `target`, running epoch processing at every
    /// epoch boundary crossed (spec `process_slots`).
    ///
    /// # Errors
    ///
    /// Returns [`StateError::SlotRegression`] if `target < self.slot`.
    pub fn process_slots(&mut self, target: Slot) -> Result<(), StateError> {
        if target < self.slot {
            return Err(StateError::SlotRegression {
                state_slot: self.slot,
                target,
            });
        }
        while self.slot < target {
            // End of an epoch: run epoch processing before entering the
            // first slot of the next epoch.
            if (self.slot.as_u64() + 1).is_multiple_of(self.config.slots_per_epoch) {
                self.process_epoch();
            }
            self.slot = self.slot.next();
            // Missed-slot semantics: carry the previous block root forward;
            // process_block overwrites it if a block arrives at this slot.
            let last = self.latest_block_root();
            self.block_roots.push(last);
        }
        Ok(())
    }

    // ── crate-internal mutators used by the processing modules ──────────

    pub(crate) fn validators_mut(&mut self) -> &mut Vec<Validator> {
        &mut self.validators
    }

    pub(crate) fn inactivity_scores_mut(&mut self) -> &mut Vec<u64> {
        &mut self.inactivity_scores
    }

    pub(crate) fn participation_mut(
        &mut self,
    ) -> (&mut Vec<ParticipationFlags>, &mut Vec<ParticipationFlags>) {
        (
            &mut self.previous_epoch_participation,
            &mut self.current_epoch_participation,
        )
    }

    pub(crate) fn justification_state_mut(
        &mut self,
    ) -> (
        &mut [bool; 4],
        &mut Checkpoint,
        &mut Checkpoint,
        &mut Checkpoint,
    ) {
        (
            &mut self.justification_bits,
            &mut self.previous_justified_checkpoint,
            &mut self.current_justified_checkpoint,
            &mut self.finalized_checkpoint,
        )
    }

    pub(crate) fn slashings_ring(&mut self) -> &mut Vec<Gwei> {
        &mut self.slashings
    }

    pub(crate) fn slashings_sum(&self) -> Gwei {
        self.slashings.iter().copied().sum()
    }

    pub(crate) fn record_block_root(&mut self, root: Root) {
        let idx = self.slot.as_u64() as usize;
        debug_assert!(idx < self.block_roots.len());
        self.block_roots[idx] = root;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(n: usize) -> BeaconState {
        BeaconState::genesis(ChainConfig::minimal(), n)
    }

    #[test]
    fn genesis_state_shape() {
        let s = state(8);
        assert_eq!(s.slot(), Slot::GENESIS);
        assert_eq!(s.current_epoch(), Epoch::GENESIS);
        assert_eq!(s.num_validators(), 8);
        assert_eq!(s.total_active_balance(), Gwei::from_eth_u64(8 * 32));
        assert_eq!(s.finalized_checkpoint().epoch, Epoch::GENESIS);
        assert!(!s.is_in_inactivity_leak());
    }

    #[test]
    fn process_slots_advances_and_fills_roots() {
        let mut s = state(4);
        s.process_slots(Slot::new(5)).unwrap();
        assert_eq!(s.slot(), Slot::new(5));
        // all roots equal genesis root (no blocks applied)
        for slot in 0..=5 {
            assert_eq!(s.block_root_at_slot(Slot::new(slot)), s.genesis_root());
        }
    }

    #[test]
    fn slot_regression_is_rejected() {
        let mut s = state(4);
        s.process_slots(Slot::new(3)).unwrap();
        assert!(matches!(
            s.process_slots(Slot::new(1)),
            Err(StateError::SlotRegression { .. })
        ));
    }

    #[test]
    fn epoch_boundary_rotates_participation() {
        let mut s = state(4);
        s.merge_current_participation(ValidatorIndex::new(2), ParticipationFlags::all());
        assert!(s
            .current_participation(ValidatorIndex::new(2))
            .has_timely_target());
        // crossing into epoch 1 rotates current → previous
        s.process_slots(Epoch::new(1).start_slot(s.config().slots_per_epoch))
            .unwrap();
        assert!(s
            .previous_participation(ValidatorIndex::new(2))
            .has_timely_target());
        assert!(s.current_participation(ValidatorIndex::new(2)).is_empty());
    }

    #[test]
    fn balance_helpers_saturate() {
        let mut s = state(2);
        let v = ValidatorIndex::new(0);
        s.decrease_balance(v, Gwei::from_eth_u64(1000));
        assert_eq!(s.balance(v), Gwei::ZERO);
        s.increase_balance(v, Gwei::from_eth_u64(1));
        assert_eq!(s.balance(v), Gwei::from_eth_u64(1));
    }

    #[test]
    fn total_active_balance_has_floor() {
        let mut s = state(1);
        // exit the only validator
        s.validators_mut()[0].exit_epoch = Epoch::GENESIS;
        assert_eq!(
            s.total_active_balance(),
            s.config().effective_balance_increment
        );
    }

    #[test]
    fn participating_target_balance_counts_only_flagged() {
        let mut s = state(4);
        let mut f = ParticipationFlags::EMPTY;
        f.set(crate::participation::TIMELY_TARGET_FLAG_INDEX);
        s.merge_current_participation(ValidatorIndex::new(0), f);
        s.merge_current_participation(ValidatorIndex::new(1), f);
        assert_eq!(
            s.unslashed_participating_target_balance(s.current_epoch()),
            Gwei::from_eth_u64(64)
        );
    }
}

//! Per-stage epoch-processing timers feeding the
//! `ethpos_epoch_stage_seconds{backend, stage}` histograms.
//!
//! Shared by both backends: the dense path times every spec stage of
//! every epoch (dense epochs cost µs–ms, the timer is noise), the
//! cohort path times its three fused phases on a 1-in-64 epoch sample
//! (its epochs cost ~0.5 µs, so even sparse timing is measurable — see
//! the `obs_overhead` bench gate). Purely observational: timers never
//! touch the transition's arithmetic or control flow.

use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use ethpos_obs::Histogram;

/// Stage histograms are looked up once per `(backend, stage)` pair and
/// cached; the set is tiny (≤ 11 pairs), so a linear scan under a mutex
/// beats hashing and keeps this std-only.
fn histogram_for(backend: &'static str, stage: &'static str) -> Arc<Histogram> {
    type Cache = Vec<((&'static str, &'static str), Arc<Histogram>)>;
    static CACHE: OnceLock<Mutex<Cache>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(Vec::new()));
    let mut guard = cache.lock().expect("stage cache poisoned");
    if let Some((_, h)) = guard
        .iter()
        .find(|((b, s), _)| *b == backend && *s == stage)
    {
        return h.clone();
    }
    let h = ethpos_obs::global().histogram(
        "ethpos_epoch_stage_seconds",
        "Wall-clock seconds per epoch-processing stage (cohort stages are \
         sampled 1-in-64 epochs).",
        &[("backend", backend), ("stage", stage)],
        // Stages span ~100 ns (compressed cohort phases) to ~1 s (dense
        // million-validator rewards).
        &ethpos_obs::exponential_buckets(1e-7, 4.0, 14),
    );
    guard.push(((backend, stage), h.clone()));
    h
}

/// Measures consecutive stages: each [`StageTimer::stage`] call records
/// the wall-clock time since the previous call (or construction) into
/// that stage's histogram.
pub(crate) struct StageTimer {
    backend: &'static str,
    last: Instant,
}

impl StageTimer {
    /// Closes the current stage under `stage` and starts the next.
    pub fn stage(&mut self, stage: &'static str) {
        let now = Instant::now();
        let elapsed = now - self.last;
        self.last = now;
        histogram_for(self.backend, stage).observe(elapsed.as_secs_f64());
    }
}

/// A running timer when metrics are enabled *and* this epoch is in the
/// caller's sample (`sampled`); `None` otherwise — the disabled path is
/// one relaxed load and a branch.
#[inline]
pub(crate) fn stage_timer(backend: &'static str, sampled: bool) -> Option<StageTimer> {
    if sampled && ethpos_obs::metrics_enabled() {
        Some(StageTimer {
            backend,
            last: Instant::now(),
        })
    } else {
        None
    }
}

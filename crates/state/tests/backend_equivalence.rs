//! Property tests: the cohort-compressed backend is **bit-identical** to
//! the dense reference backend.
//!
//! Random class compositions (counts, genesis balances spanning the
//! 16.75-ETH ejection edge), random per-class participation schedules and
//! both penalty-semantics configurations are driven through
//! [`DenseState`] and [`CohortState`] in lockstep, asserting equal
//! [`StateSnapshot`]s after **every** epoch — including across ejection
//! boundaries and justification/finalization flips.

use proptest::prelude::*;

use ethpos_sim::{PartitionConfig, PartitionSim, PartitionTimeline};
use ethpos_state::backend::{ClassSpec, StateBackend};
use ethpos_state::{CohortState, DenseState, ParticipationFlags, ReferenceCohortState};
use ethpos_types::{BranchId, ChainConfig, Gwei};
use ethpos_validator::{BranchChoice, BranchStatus, ByzantineSchedule};

/// Builds the two backends from the same class specs.
fn pair(config: &ChainConfig, classes: &[ClassSpec]) -> (DenseState, CohortState) {
    (
        DenseState::from_classes(config.clone(), classes),
        CohortState::from_classes(config.clone(), classes),
    )
}

/// Decodes one strategy draw into class specs: counts in 1..6, balances
/// in [16.0, 33.0) ETH — straddling the ejection threshold (16.75) and
/// the 32-ETH cap.
fn decode_classes(raw: &[(u64, f64)]) -> Vec<ClassSpec> {
    raw.iter()
        .map(|&(count, eth)| ClassSpec {
            count: 1 + count % 5,
            balance: Gwei::from_eth_f64(eth),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Deterministic random schedules: class `c` participates at epoch
    /// `e` iff bit `e` of its schedule word is set. Snapshots must agree
    /// after every one of the 24 epochs, under both penalty semantics.
    #[test]
    fn cohort_matches_dense_under_random_schedules(
        raw in proptest::collection::vec((0u64..1 << 16, 16.0f64..33.0), 1..4),
        schedules in proptest::collection::vec(0u64..u64::MAX, 3..4),
        paper in any::<bool>(),
    ) {
        let config = if paper { ChainConfig::paper() } else { ChainConfig::minimal() };
        let classes = decode_classes(&raw);
        let (mut dense, mut cohort) = pair(&config, &classes);
        prop_assert_eq!(dense.snapshot(), cohort.snapshot());
        for epoch in 0..24u64 {
            for (c, _) in classes.iter().enumerate() {
                if schedules[c % schedules.len()] >> (epoch % 64) & 1 == 1 {
                    dense.mark_class(c, ParticipationFlags::all());
                    cohort.mark_class(c, ParticipationFlags::all());
                }
            }
            dense.advance_epoch(None);
            cohort.advance_epoch(None);
            prop_assert_eq!(dense.snapshot(), cohort.snapshot(), "epoch {}", epoch);
        }
    }

    /// Sampled (split-inducing) marking: at genesis each class is one
    /// uniform cohort, so feeding both backends the same draw sequence
    /// marks the same *number* per class — and snapshots are
    /// identity-free, so they must stay equal through the following
    /// epochs as the split halves diverge and eventually remerge.
    #[test]
    fn cohort_matches_dense_after_sampled_splits(
        raw in proptest::collection::vec((0u64..1 << 16, 16.0f64..33.0), 1..3),
        pattern in 0u64..u64::MAX,
        epochs in 4u64..16,
    ) {
        let config = ChainConfig::paper();
        let classes = decode_classes(&raw);
        let (mut dense, mut cohort) = pair(&config, &classes);
        for (c, _) in classes.iter().enumerate() {
            let mut i = 0u64;
            let mut dense_draw = || { i += 1; pattern >> (i % 64) & 1 == 1 };
            dense.mark_class_sampled(c, ParticipationFlags::all(), &mut dense_draw);
            let mut j = 0u64;
            let mut cohort_draw = || { j += 1; pattern >> (j % 64) & 1 == 1 };
            cohort.mark_class_sampled(c, ParticipationFlags::all(), &mut cohort_draw);
        }
        for epoch in 0..epochs {
            dense.advance_epoch(None);
            cohort.advance_epoch(None);
            prop_assert_eq!(dense.snapshot(), cohort.snapshot(), "epoch {}", epoch);
        }
    }

    /// Count-level marking at genesis: each class is one uniform cohort,
    /// so one count draw of `k` on the cohort backend must equal marking
    /// the first `k` members on the dense backend — snapshots are
    /// identity-free and must stay equal as the split halves diverge.
    #[test]
    fn cohort_counted_matches_dense_first_k_marks(
        raw in proptest::collection::vec((0u64..1 << 16, 16.0f64..33.0), 1..3),
        pattern in 0u64..u64::MAX,
        epochs in 4u64..16,
    ) {
        let config = ChainConfig::paper();
        let classes = decode_classes(&raw);
        let (mut dense, mut cohort) = pair(&config, &classes);
        for (c, spec) in classes.iter().enumerate() {
            let k = (pattern >> (8 * (c % 8))) % (spec.count + 1);
            let mut i = 0u64;
            dense.mark_class_sampled(c, ParticipationFlags::all(), &mut || { i += 1; i <= k });
            cohort.mark_class_counted(c, ParticipationFlags::all(), &mut |_| k);
        }
        prop_assert_eq!(dense.snapshot(), cohort.snapshot(), "after marking");
        for epoch in 0..epochs {
            dense.advance_epoch(None);
            cohort.advance_epoch(None);
            prop_assert_eq!(dense.snapshot(), cohort.snapshot(), "epoch {}", epoch);
        }
    }

    /// β₀/p0-shaped two-class partitions (the §5.2 sim layout) with the
    /// idle side leaking to ejection at genesis-edge balances.
    #[test]
    fn partition_layouts_agree_across_ejection(
        beta0 in 0.05f64..0.45,
        p0 in 0.2f64..0.8,
        idle_eth in 16.0f64..18.0,
    ) {
        let config = ChainConfig::paper();
        let n = 30u64;
        let byz = ((beta0 * n as f64).round() as u64).max(1);
        let on_a = ((p0 * (n - byz) as f64).round() as u64).max(1);
        let classes = [
            ClassSpec::full_stake(byz, &config),
            ClassSpec::full_stake(on_a, &config),
            ClassSpec { count: (n - byz).saturating_sub(on_a).max(1), balance: Gwei::from_eth_f64(idle_eth) },
        ];
        let (mut dense, mut cohort) = pair(&config, &classes);
        for epoch in 0..32u64 {
            // Byzantine + branch-A honest attest; the low-balance idle
            // class leaks (and, below 16.75 ETH genesis balances, ejects
            // in the very first registry update).
            for c in [0usize, 1] {
                dense.mark_class(c, ParticipationFlags::all());
                cohort.mark_class(c, ParticipationFlags::all());
            }
            dense.advance_epoch(None);
            cohort.advance_epoch(None);
            prop_assert_eq!(dense.snapshot(), cohort.snapshot(), "epoch {}", epoch);
            prop_assert_eq!(dense.class_stats(2), cohort.class_stats(2));
        }
    }
}

/// A deterministic test schedule: the Byzantine choice at epoch `e`
/// over `k` branches is read off the bits of one word, so dense and
/// cohort replays observe the same adversary.
#[derive(Debug)]
struct BitSchedule(u64);

impl ByzantineSchedule for BitSchedule {
    fn participate(&mut self, status: &[BranchStatus]) -> BranchChoice {
        let e = status[0].epoch;
        let mut choice = BranchChoice::NONE;
        for position in 0..status.len() {
            if self.0 >> ((e as usize * 5 + position * 3) % 64) & 1 == 1 {
                choice = choice.with(position);
            }
        }
        choice
    }

    fn name(&self) -> &'static str {
        "bit-schedule"
    }

    fn clone_box(&self) -> Box<dyn ByzantineSchedule> {
        Box::new(BitSchedule(self.0))
    }
}

/// Builds a random-but-valid partition timeline with k ≤ 4 branches:
/// an initial 2- or 3-way split, then optionally a heal (and re-split)
/// or a further split of branch 1.
fn decode_timeline(w: (u8, u8, u8), three_way: bool, op2: u8, e1: u64) -> PartitionTimeline {
    let w = [w.0, w.1, w.2];
    let weight = |x: u8| 1.0 + f64::from(x % 16);
    let b = BranchId::new;
    let first: Vec<f64> = if three_way {
        vec![weight(w[0]), weight(w[1]), weight(w[2])]
    } else {
        vec![weight(w[0]), weight(w[1])]
    };
    let t = PartitionTimeline::new().split(0, b(0), &first);
    match op2 % 3 {
        // heal branch 1 into 0, then re-split branch 0
        1 => t
            .heal(e1, b(0), &[b(1)])
            .split(e1 + 3, b(0), &[weight(w[2]), weight(w[0])]),
        // deepen the partition (k grows to 3 or 4)
        2 => t.split(e1, b(1), &[weight(w[1]), weight(w[2])]),
        _ => t,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The partition engine is **bit-identical** across all three
    /// backends on random timelines: random k ≤ 4 splits/heals, random
    /// Byzantine schedules, snapshot equality on every live branch after
    /// every epoch — including across the fork clones (the cohort
    /// backend's copy-on-write `Arc` sharing) and heal retirements. The
    /// clone-based [`ReferenceCohortState`] rides along as the
    /// structural-sharing-free oracle.
    #[test]
    fn partition_timelines_agree_across_backends(
        w in (any::<u8>(), any::<u8>(), any::<u8>()),
        three_way in any::<bool>(),
        op2 in 0u8..3,
        e1 in 3u64..8,
        schedule_word in any::<u64>(),
        n_honest in 8u64..40,
        byzantine in 0u64..12,
    ) {
        let timeline = decode_timeline(w, three_way, op2, e1);
        let config = || PartitionConfig {
            stop_on_conflict: false,
            record_every: u64::MAX,
            ..PartitionConfig::paper(
                (n_honest + byzantine) as usize,
                byzantine as usize,
                timeline.clone(),
                16,
            )
        };
        let mut dense =
            PartitionSim::<DenseState>::with_backend(config(), Box::new(BitSchedule(schedule_word)))
                .expect("valid by construction");
        let mut cohort =
            PartitionSim::<CohortState>::with_backend(config(), Box::new(BitSchedule(schedule_word)))
                .expect("valid by construction");
        let mut reference = PartitionSim::<ReferenceCohortState>::with_backend(
            config(),
            Box::new(BitSchedule(schedule_word)),
        )
        .expect("valid by construction");
        loop {
            let more_dense = dense.step();
            let more_cohort = cohort.step();
            let more_reference = reference.step();
            prop_assert_eq!(more_dense, more_cohort);
            prop_assert_eq!(more_dense, more_reference);
            prop_assert_eq!(dense.live_branches(), cohort.live_branches());
            prop_assert_eq!(dense.live_branches(), reference.live_branches());
            for branch in dense.live_branches() {
                prop_assert_eq!(
                    dense.branch(branch).snapshot(),
                    cohort.branch(branch).snapshot(),
                    "cohort branch {} at epoch {}",
                    branch,
                    dense.current_epoch()
                );
                prop_assert_eq!(
                    dense.branch(branch).snapshot(),
                    reference.branch(branch).snapshot(),
                    "reference branch {} at epoch {}",
                    branch,
                    dense.current_epoch()
                );
            }
            if !more_dense {
                break;
            }
        }
        let dense_out = dense.finish();
        let cohort_out = cohort.finish();
        let reference_out = reference.finish();
        let dense_json = serde_json::to_string(&dense_out).unwrap();
        prop_assert_eq!(&dense_json, &serde_json::to_string(&cohort_out).unwrap());
        prop_assert_eq!(&dense_json, &serde_json::to_string(&reference_out).unwrap());
    }
}

/// Mid-run ejection at the hysteresis edge: a 17-ETH idle class crosses
/// the 16.75-ETH actual-balance threshold around epoch ~700 of a leak,
/// its effective balance snaps to 16 ETH and the registry update ejects
/// it — on both backends at the same epoch, with equal snapshots
/// throughout.
#[test]
fn mid_run_ejection_is_bit_identical() {
    let config = ChainConfig::paper();
    let classes = [
        ClassSpec::full_stake(2, &config),
        ClassSpec {
            count: 8,
            balance: Gwei::from_eth_u64(17),
        },
    ];
    let (mut dense, mut cohort) = pair(&config, &classes);
    let mut ejected_at = None;
    for epoch in 0..800u64 {
        dense.mark_class(0, ParticipationFlags::all());
        cohort.mark_class(0, ParticipationFlags::all());
        dense.advance_epoch(None);
        cohort.advance_epoch(None);
        assert_eq!(dense.snapshot(), cohort.snapshot(), "epoch {epoch}");
        let stats = cohort.class_stats(1);
        if ejected_at.is_none() && stats.exited > 0 {
            // The whole cohort crosses the hysteresis edge together.
            assert_eq!(stats.exited, 8, "partial ejection at {epoch}");
            ejected_at = Some(epoch);
        }
    }
    let e = ejected_at.expect("the 17-ETH class must be ejected");
    assert!(
        (600..790).contains(&e),
        "ejected at {e}, expected ≈700 (0.25 ETH of I·s/2²⁶ decay)"
    );
}

/// The exact and reference cohort backends walk cohorts in the same
/// canonical (sorted `MemberState`) order, so feeding each a
/// `Binomial(count, p)` count stream off identically-seeded RNGs must
/// keep them **byte-identical** even as churn fragments the cohort
/// structure over a leak. (The dense backend is only equal in law here:
/// it consumes one singleton draw per member, a different stream.)
#[test]
fn counted_churn_keeps_cohort_and_reference_byte_identical() {
    use ethpos_stats::{seeded_rng, Binomial};
    let config = ChainConfig::paper();
    let classes = [
        ClassSpec::full_stake(4, &config),
        ClassSpec::full_stake(40, &config),
        ClassSpec {
            count: 9,
            balance: Gwei::from_eth_f64(17.0),
        },
    ];
    for seed in 0..8u64 {
        let mut cohort = CohortState::from_classes(config.clone(), &classes);
        let mut reference = ReferenceCohortState::from_classes(config.clone(), &classes);
        let mut rng_a = seeded_rng(seed);
        let mut rng_b = seeded_rng(seed);
        for epoch in 0..48u64 {
            // Class 0 pins; classes 1–2 churn at p = 0.45 — under-⅔
            // participation, so the chain leaks and balances (hence
            // cohort structures) fragment path-dependently.
            cohort.mark_class(0, ParticipationFlags::all());
            reference.mark_class(0, ParticipationFlags::all());
            for class in [1usize, 2] {
                cohort.mark_class_counted(class, ParticipationFlags::all(), &mut |count| {
                    Binomial::new(count, 0.45).sample(&mut rng_a)
                });
                reference.mark_class_counted(class, ParticipationFlags::all(), &mut |count| {
                    Binomial::new(count, 0.45).sample(&mut rng_b)
                });
            }
            cohort.advance_epoch(None);
            reference.advance_epoch(None);
            assert_eq!(
                cohort.snapshot(),
                reference.snapshot(),
                "seed {seed} epoch {epoch}"
            );
        }
        assert!(cohort.num_cohorts() > 3, "churn should fragment cohorts");
    }
}

/// The cohort backend *splits* a cohort sitting at the hysteresis edge
/// when a sampled participation pattern differentiates its members:
/// idle members keep accumulating inactivity penalties and are ejected
/// at 16.75 ETH, while the sampled half recovers — totals conserved,
/// every ejected member's effective balance at the 16-ETH ejection
/// threshold. Spec penalty semantics (penalties only in missed epochs)
/// make the recovery sharp; `base_reward_factor: 0` keeps the flat flag
/// penalties out of the arithmetic like the paper preset does.
#[test]
fn sampled_split_at_the_hysteresis_edge_ejects_only_the_idle_half() {
    let config = ChainConfig {
        paper_inactivity_penalties: false,
        ..ChainConfig::paper()
    };
    let classes = [
        ClassSpec::full_stake(2, &config),
        ClassSpec {
            count: 10,
            balance: Gwei::from_eth_u64(17),
        },
    ];
    let mut cohort = CohortState::from_classes(config, &classes);
    for _ in 0..800u64 {
        cohort.mark_class(0, ParticipationFlags::all());
        // Half of the 17-ETH class attests every epoch. The first sampled
        // call splits the cohort; afterwards the idle sub-cohort sorts
        // first in the canonical member order (lower balance/flags), so
        // marking draws `5..10` keeps the same half attesting — the
        // membership is sticky and only the idle sub-cohort decays
        // toward the 16.75-ETH edge.
        if cohort.class_stats(1).active == 10 {
            let mut i = 0u32;
            cohort.mark_class_sampled(1, ParticipationFlags::all(), &mut || {
                i += 1;
                i > 5
            });
        } else {
            // The idle sub-cohort has been ejected: keep the survivors
            // attesting.
            cohort.mark_class(1, ParticipationFlags::all());
        }
        cohort.advance_epoch(None);
    }
    let stats = cohort.class_stats(1);
    assert_eq!(stats.total, 10);
    assert_eq!(
        stats.exited, 5,
        "exactly the idle half must cross the ejection edge"
    );
    assert_eq!(stats.active, 5);
    // The split is visible as distinct cohorts within one class.
    assert!(cohort.num_cohorts() >= 3, "got {}", cohort.num_cohorts());
    // Survivors hold their full 17 ETH (always timely, spec semantics);
    // everyone ejected snapped to the 16-ETH effective ejection
    // threshold.
    let snap = cohort.snapshot();
    assert!(snap.classes[1].len() >= 2);
    for (m, _) in &snap.classes[1] {
        if m.has_exited_by(cohort.current_epoch()) {
            assert_eq!(m.effective_balance, Gwei::from_eth_u64(16));
        } else {
            assert!(m.balance > Gwei::from_eth_f64(16.75), "{:?}", m.balance);
        }
    }
}

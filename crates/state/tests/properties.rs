//! Property-based invariants of the beacon-state transition under random
//! participation patterns.

use proptest::prelude::*;

use ethpos_state::participation::TIMELY_TARGET_FLAG_INDEX;
use ethpos_state::{BeaconState, ParticipationFlags};
use ethpos_types::{ChainConfig, Gwei, ValidatorIndex};

const N: usize = 12;

/// Drives `state` for `patterns.len()` epochs; bit `v` of `patterns[e]`
/// says whether validator `v` attests (timely target) at epoch `e`.
fn drive(state: &mut BeaconState, patterns: &[u16]) {
    let mut flags = ParticipationFlags::EMPTY;
    flags.set(TIMELY_TARGET_FLAG_INDEX);
    for &pat in patterns {
        for v in 0..N {
            if pat & (1 << v) != 0 {
                state.merge_current_participation(ValidatorIndex::from(v), flags);
            }
        }
        let next = (state.current_epoch() + 1).start_slot(state.config().slots_per_epoch);
        state.process_slots(next).expect("monotone");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Finalized epoch never exceeds the justified epoch, and both are
    /// monotone non-decreasing across arbitrary participation histories.
    #[test]
    fn finality_is_monotone_and_ordered(patterns in proptest::collection::vec(any::<u16>(), 1..24)) {
        let mut state = BeaconState::genesis(ChainConfig::paper(), N);
        let mut last_justified = 0u64;
        let mut last_finalized = 0u64;
        let mut flags = ParticipationFlags::EMPTY;
        flags.set(TIMELY_TARGET_FLAG_INDEX);
        for &pat in &patterns {
            for v in 0..N {
                if pat & (1 << v) != 0 {
                    state.merge_current_participation(ValidatorIndex::from(v), flags);
                }
            }
            let next = (state.current_epoch() + 1).start_slot(state.config().slots_per_epoch);
            state.process_slots(next).unwrap();
            let j = state.current_justified_checkpoint().epoch.as_u64();
            let f = state.finalized_checkpoint().epoch.as_u64();
            prop_assert!(f <= j, "finalized {f} > justified {j}");
            prop_assert!(j >= last_justified, "justified regressed");
            prop_assert!(f >= last_finalized, "finalized regressed");
            last_justified = j;
            last_finalized = f;
        }
    }

    /// With attestation rewards off (paper config), no balance ever
    /// increases, and fully-active validators never lose anything.
    #[test]
    fn balances_never_increase_under_paper_config(patterns in proptest::collection::vec(any::<u16>(), 1..24)) {
        let mut state = BeaconState::genesis(ChainConfig::paper(), N);
        let mut prev: Vec<Gwei> = state.balances().to_vec();
        let mut flags = ParticipationFlags::EMPTY;
        flags.set(TIMELY_TARGET_FLAG_INDEX);
        for &pat in &patterns {
            for v in 0..N {
                if pat & (1 << v) != 0 {
                    state.merge_current_participation(ValidatorIndex::from(v), flags);
                }
            }
            let next = (state.current_epoch() + 1).start_slot(state.config().slots_per_epoch);
            state.process_slots(next).unwrap();
            for (v, (&now, &before)) in state.balances().iter().zip(&prev).enumerate() {
                prop_assert!(now <= before, "validator {v} balance grew: {before} → {now}");
            }
            prev = state.balances().to_vec();
        }
    }

    /// Inactivity scores stay within the physical envelope `[0, 4·epochs]`
    /// and always-active validators keep score 0.
    #[test]
    fn inactivity_scores_bounded(patterns in proptest::collection::vec(any::<u16>(), 1..24)) {
        let mut state = BeaconState::genesis(ChainConfig::paper(), N);
        // validator 0 is always active regardless of the pattern
        let patched: Vec<u16> = patterns.iter().map(|p| p | 1).collect();
        drive(&mut state, &patched);
        let epochs = patched.len() as u64;
        prop_assert_eq!(state.inactivity_score(ValidatorIndex::new(0)), 0);
        for v in 0..N {
            let s = state.inactivity_score(ValidatorIndex::from(v));
            prop_assert!(s <= 4 * epochs, "score {s} exceeds 4·{epochs}");
        }
    }

    /// Effective balance tracks the actual balance within the hysteresis
    /// envelope: never more than 0.25 ETH above, never more than
    /// 1.25 ETH + 1 increment below.
    #[test]
    fn effective_balance_tracks_actual(patterns in proptest::collection::vec(any::<u16>(), 1..32)) {
        let mut state = BeaconState::genesis(ChainConfig::paper(), N);
        drive(&mut state, &patterns);
        for (v, bal) in state.validators().iter().zip(state.balances()) {
            let eff = v.effective_balance.as_u64() as i128;
            let actual = bal.as_u64() as i128;
            prop_assert!(eff <= actual + 250_000_000, "eff {eff} vs actual {actual}");
            prop_assert!(eff >= actual - 2_250_000_000, "eff {eff} vs actual {actual}");
        }
    }

    /// Supermajority participation each epoch ⇒ the chain keeps
    /// finalizing and never enters a leak, regardless of which minority
    /// abstains.
    #[test]
    fn supermajority_always_finalizes(abstainers in proptest::collection::vec(0usize..N, 1..24)) {
        let mut state = BeaconState::genesis(ChainConfig::paper(), N);
        let mut flags = ParticipationFlags::EMPTY;
        flags.set(TIMELY_TARGET_FLAG_INDEX);
        for &out in &abstainers {
            for v in 0..N {
                if v != out {
                    state.merge_current_participation(ValidatorIndex::from(v), flags);
                }
            }
            let next = (state.current_epoch() + 1).start_slot(state.config().slots_per_epoch);
            state.process_slots(next).unwrap();
        }
        prop_assert!(!state.is_in_inactivity_leak());
        if abstainers.len() >= 4 {
            prop_assert!(state.finalized_checkpoint().epoch.as_u64() > 0);
        }
    }

    /// Slashing is idempotent and the slashed balance never resurrects.
    #[test]
    fn slashing_is_terminal(victims in proptest::collection::vec(0u64..N as u64, 1..8),
                            epochs in 1usize..12) {
        let mut state = BeaconState::genesis(ChainConfig::paper(), N);
        for &v in &victims {
            state.slash_validator(ValidatorIndex::new(v));
        }
        let balances_after_slash: Vec<Gwei> = state.balances().to_vec();
        drive(&mut state, &vec![0u16; epochs]);
        for &v in &victims {
            let i = v as usize;
            prop_assert!(state.validators()[i].slashed);
            prop_assert!(state.balance(ValidatorIndex::new(v)) <= balances_after_slash[i]);
            prop_assert!(state.validators()[i].exit_epoch.as_u64() <= 1);
        }
    }
}

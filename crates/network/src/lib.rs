//! Partially synchronous simulated network.
//!
//! Reifies the paper's system model (§2):
//!
//! * **best-effort broadcast** with message-passing;
//! * **partial synchrony**: before an unknown *Global Stabilization Time*
//!   (GST) there is no bound on cross-partition delay — we model the
//!   paper's partition scenario where honest validators are split into
//!   isolated regions with healthy communication *inside* each region;
//!   messages crossing regions are delivered at `GST + Δ`;
//! * **adversarial connectivity**: Byzantine validators see every message
//!   immediately, are reachable from every region, and can schedule the
//!   release of withheld messages to any region at any slot (used by the
//!   probabilistic bouncing attack).
//!
//! Recipients are *views*: all honest validators inside one partition see
//! the same message stream (bounded intra-partition delay), which is
//! exactly how the paper reasons about branches. The adversary is one
//! extra omniscient view.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod message;
pub mod network;

pub use message::{Message, Recipient};
pub use network::{NetworkConfig, SimNetwork};

//! The simulated network: delivery queues per view with GST semantics.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ethpos_types::Slot;

use crate::message::{Message, Recipient};

/// Network parameters (delays in slots).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkConfig {
    /// Number of honest partition groups (1 = no partition).
    pub num_groups: usize,
    /// Global Stabilization Time: before this slot, messages do not cross
    /// partition boundaries; they are delivered at `gst + post_gst_delay`.
    pub gst: Slot,
    /// Delay (slots) inside one partition — the paper assumes healthy
    /// intra-region communication even before GST.
    pub intra_delay: u64,
    /// The bound Δ on message delay after GST, in slots.
    pub post_gst_delay: u64,
    /// Random extra delay in `0..=jitter` slots added to every delivery
    /// (0 = deterministic). Models the paper's partial synchrony where Δ
    /// is only an upper bound; requires a seed via
    /// [`SimNetwork::with_seed`].
    pub jitter: u64,
}

impl NetworkConfig {
    /// A healthy synchronous network: one group, instant delivery.
    pub fn synchronous() -> Self {
        NetworkConfig {
            num_groups: 1,
            gst: Slot::GENESIS,
            intra_delay: 0,
            post_gst_delay: 0,
            jitter: 0,
        }
    }

    /// A two-region partition healing at `gst`.
    pub fn partitioned(gst: Slot) -> Self {
        NetworkConfig {
            num_groups: 2,
            gst,
            intra_delay: 0,
            post_gst_delay: 1,
            jitter: 0,
        }
    }

    /// A healthy network whose deliveries arrive with a random delay of
    /// up to `max_jitter` slots (bounded-Δ partial synchrony after GST).
    pub fn jittery(max_jitter: u64) -> Self {
        NetworkConfig {
            jitter: max_jitter,
            ..NetworkConfig::synchronous()
        }
    }
}

type QueueEntry = Reverse<(u64, u64)>; // (deliver slot, sequence)

/// Best-effort broadcast network with partition groups and an adversary
/// view.
#[derive(Debug)]
pub struct SimNetwork {
    config: NetworkConfig,
    /// One delivery queue per honest group, plus one for the adversary
    /// (last index).
    queues: Vec<BinaryHeap<QueueEntry>>,
    payloads: Vec<Option<Message>>,
    seq: u64,
    /// Deterministic jitter state (splitmix-style), advanced per delivery.
    jitter_state: u64,
}

impl SimNetwork {
    /// Creates an empty network (jitter seed 0).
    pub fn new(config: NetworkConfig) -> Self {
        SimNetwork::with_seed(config, 0)
    }

    /// Creates an empty network with an explicit jitter seed.
    pub fn with_seed(config: NetworkConfig, seed: u64) -> Self {
        let queues = (0..config.num_groups + 1)
            .map(|_| BinaryHeap::new())
            .collect();
        SimNetwork {
            config,
            queues,
            payloads: Vec::new(),
            seq: 0,
            jitter_state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next jitter draw in `0..=jitter` (deterministic per seed).
    fn next_jitter(&mut self) -> u64 {
        if self.config.jitter == 0 {
            return 0;
        }
        // splitmix64 step
        self.jitter_state = self.jitter_state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.jitter_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        z % (self.config.jitter + 1)
    }

    /// Network parameters.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    fn queue_index(&self, r: Recipient) -> usize {
        match r {
            Recipient::Group(g) => {
                assert!(g < self.config.num_groups, "unknown group {g}");
                g
            }
            Recipient::Adversary => self.config.num_groups,
        }
    }

    fn enqueue(&mut self, r: Recipient, deliver_at: Slot, msg: Message) {
        let q = self.queue_index(r);
        let id = self.payloads.len() as u64;
        self.payloads.push(Some(msg));
        self.queues[q].push(Reverse((deliver_at.as_u64(), id)));
        self.seq += 1;
    }

    /// Delivery slot for a message sent by `from` to group `to` at `now`.
    ///
    /// * same group: `now + intra_delay`;
    /// * cross-group before GST: `max(now, gst) + post_gst_delay` — the
    ///   paper's "messages sent before GST are received at most at
    ///   GST + Δ";
    /// * cross-group after GST: `now + post_gst_delay`;
    /// * adversary sender: reaches every group like an insider
    ///   (`now + intra_delay`) — Byzantine validators are connected to all
    ///   partitions;
    /// * adversary recipient: `now` (omniscient).
    pub fn delivery_slot(&self, from: Option<usize>, to: Recipient, now: Slot) -> Slot {
        match (from, to) {
            (_, Recipient::Adversary) => now,
            (None, Recipient::Group(_)) => now + self.config.intra_delay,
            (Some(f), Recipient::Group(g)) if f == g => now + self.config.intra_delay,
            (Some(_), Recipient::Group(_)) => {
                let base = if now < self.config.gst {
                    self.config.gst
                } else {
                    now
                };
                base + self.config.post_gst_delay
            }
        }
    }

    /// Broadcasts `msg` from a sender in group `from` (or `None` for the
    /// adversary) at slot `now`, to every group and the adversary view.
    /// Honest deliveries receive the configured jitter; the adversary
    /// always hears instantly.
    pub fn broadcast(&mut self, from: Option<usize>, msg: Message, now: Slot) {
        for g in 0..self.config.num_groups {
            let at = self.delivery_slot(from, Recipient::Group(g), now) + self.next_jitter();
            self.enqueue(Recipient::Group(g), at, msg.clone());
        }
        let at = self.delivery_slot(from, Recipient::Adversary, now);
        self.enqueue(Recipient::Adversary, at, msg);
    }

    /// Adversarial targeted send: deliver `msg` to exactly `to` at
    /// `deliver_at` (the withheld-release primitive of the bouncing
    /// attack).
    pub fn send_targeted(&mut self, to: Recipient, msg: Message, deliver_at: Slot) {
        self.enqueue(to, deliver_at, msg);
    }

    /// Pops every message deliverable to `view` at or before `slot`, in
    /// delivery order.
    pub fn drain(&mut self, view: Recipient, slot: Slot) -> Vec<Message> {
        let q = self.queue_index(view);
        let mut out = Vec::new();
        while let Some(&Reverse((at, id))) = self.queues[q].peek() {
            if at > slot.as_u64() {
                break;
            }
            self.queues[q].pop();
            if let Some(msg) = self.payloads[id as usize].take() {
                out.push(msg);
            }
        }
        out
    }

    /// Number of messages still queued for `view`.
    pub fn pending(&self, view: Recipient) -> usize {
        self.queues[self.queue_index(view)].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethpos_types::attestation::{AttestationData, Signature};
    use ethpos_types::{Attestation, Checkpoint, Epoch, Root};

    fn msg(tag: u64) -> Message {
        Message::Attestation(Attestation::new(
            vec![tag.into()],
            AttestationData {
                slot: Slot::new(tag),
                beacon_block_root: Root::from_u64(tag),
                source: Checkpoint::new(Epoch::new(0), Root::ZERO),
                target: Checkpoint::new(Epoch::new(0), Root::ZERO),
            },
            Signature(tag),
        ))
    }

    #[test]
    fn intra_partition_delivery_is_prompt() {
        let mut net = SimNetwork::new(NetworkConfig::partitioned(Slot::new(100)));
        net.broadcast(Some(0), msg(1), Slot::new(5));
        assert_eq!(net.drain(Recipient::Group(0), Slot::new(5)).len(), 1);
    }

    #[test]
    fn cross_partition_held_until_gst() {
        let gst = Slot::new(100);
        let mut net = SimNetwork::new(NetworkConfig::partitioned(gst));
        net.broadcast(Some(0), msg(1), Slot::new(5));
        // group 1 sees nothing before GST + Δ
        assert!(net.drain(Recipient::Group(1), Slot::new(99)).is_empty());
        assert!(net.drain(Recipient::Group(1), Slot::new(100)).is_empty());
        assert_eq!(net.drain(Recipient::Group(1), Slot::new(101)).len(), 1);
    }

    #[test]
    fn cross_partition_after_gst_is_bounded() {
        let mut net = SimNetwork::new(NetworkConfig::partitioned(Slot::new(100)));
        net.broadcast(Some(0), msg(1), Slot::new(200));
        assert!(net.drain(Recipient::Group(1), Slot::new(200)).is_empty());
        assert_eq!(net.drain(Recipient::Group(1), Slot::new(201)).len(), 1);
    }

    #[test]
    fn adversary_sees_everything_immediately() {
        let mut net = SimNetwork::new(NetworkConfig::partitioned(Slot::new(100)));
        net.broadcast(Some(1), msg(1), Slot::new(5));
        assert_eq!(net.drain(Recipient::Adversary, Slot::new(5)).len(), 1);
    }

    #[test]
    fn adversary_reaches_both_partitions_before_gst() {
        let mut net = SimNetwork::new(NetworkConfig::partitioned(Slot::new(100)));
        net.broadcast(None, msg(1), Slot::new(5));
        assert_eq!(net.drain(Recipient::Group(0), Slot::new(5)).len(), 1);
        assert_eq!(net.drain(Recipient::Group(1), Slot::new(5)).len(), 1);
    }

    #[test]
    fn targeted_withheld_release() {
        let mut net = SimNetwork::new(NetworkConfig::partitioned(Slot::new(100)));
        net.send_targeted(Recipient::Group(1), msg(7), Slot::new(42));
        assert!(net.drain(Recipient::Group(1), Slot::new(41)).is_empty());
        let got = net.drain(Recipient::Group(1), Slot::new(42));
        assert_eq!(got.len(), 1);
        // group 0 never sees it
        assert!(net.drain(Recipient::Group(0), Slot::new(100)).is_empty());
    }

    #[test]
    fn jitter_delays_are_bounded() {
        let mut net = SimNetwork::with_seed(NetworkConfig::jittery(3), 42);
        let mut delivered = 0;
        for i in 0..50 {
            net.broadcast(Some(0), msg(i), Slot::new(0));
        }
        // nothing can arrive later than the jitter bound
        for s in 0..=3u64 {
            delivered += net.drain(Recipient::Group(0), Slot::new(s)).len();
        }
        assert_eq!(delivered, 50);
        assert_eq!(net.pending(Recipient::Group(0)), 0);
    }

    #[test]
    fn jitter_spreads_deliveries() {
        let mut net = SimNetwork::with_seed(NetworkConfig::jittery(3), 7);
        for i in 0..200 {
            net.broadcast(Some(0), msg(i), Slot::new(0));
        }
        let at0 = net.drain(Recipient::Group(0), Slot::new(0)).len();
        assert!(at0 > 10, "some messages arrive promptly: {at0}");
        assert!(at0 < 190, "some messages are delayed: {at0}");
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut net = SimNetwork::with_seed(NetworkConfig::jittery(5), seed);
            for i in 0..40 {
                net.broadcast(Some(0), msg(i), Slot::new(0));
            }
            (0..=5u64)
                .map(|s| net.drain(Recipient::Group(0), Slot::new(s)).len())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn adversary_is_unaffected_by_jitter() {
        let mut net = SimNetwork::with_seed(NetworkConfig::jittery(5), 1);
        for i in 0..20 {
            net.broadcast(Some(0), msg(i), Slot::new(2));
        }
        assert_eq!(net.drain(Recipient::Adversary, Slot::new(2)).len(), 20);
    }

    #[test]
    fn delivery_order_is_stable() {
        let mut net = SimNetwork::new(NetworkConfig::synchronous());
        for i in 0..5 {
            net.broadcast(Some(0), msg(i), Slot::new(3));
        }
        let got = net.drain(Recipient::Group(0), Slot::new(3));
        assert_eq!(got.len(), 5);
        let tags: Vec<u64> = got
            .iter()
            .map(|m| match m {
                Message::Attestation(a) => a.signature.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tags, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn drain_is_idempotent() {
        let mut net = SimNetwork::new(NetworkConfig::synchronous());
        net.broadcast(Some(0), msg(1), Slot::new(0));
        assert_eq!(net.drain(Recipient::Group(0), Slot::new(0)).len(), 1);
        assert!(net.drain(Recipient::Group(0), Slot::new(10)).is_empty());
        assert_eq!(net.pending(Recipient::Group(0)), 0);
    }

    #[test]
    #[should_panic(expected = "unknown group")]
    fn unknown_group_panics() {
        let mut net = SimNetwork::new(NetworkConfig::synchronous());
        net.drain(Recipient::Group(3), Slot::new(0));
    }
}

//! Wire messages.

use ethpos_types::{Attestation, AttesterSlashing, SignedBeaconBlock};

/// A consensus message on the simulated wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// A proposed block.
    Block(SignedBeaconBlock),
    /// An (aggregated) attestation.
    Attestation(Attestation),
    /// Attester-slashing evidence.
    Slashing(AttesterSlashing),
}

impl Message {
    /// Short human-readable kind tag for traces.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::Block(_) => "block",
            Message::Attestation(_) => "attestation",
            Message::Slashing(_) => "slashing",
        }
    }
}

/// Where a message is headed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recipient {
    /// One honest partition group.
    Group(usize),
    /// The adversary's omniscient view.
    Adversary,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethpos_types::attestation::{AttestationData, Signature};
    use ethpos_types::{Attestation, Checkpoint, Epoch, Root, Slot};

    #[test]
    fn message_kinds() {
        let att = Attestation::new(
            vec![],
            AttestationData {
                slot: Slot::new(0),
                beacon_block_root: Root::ZERO,
                source: Checkpoint::new(Epoch::new(0), Root::ZERO),
                target: Checkpoint::new(Epoch::new(0), Root::ZERO),
            },
            Signature(0),
        );
        assert_eq!(Message::Attestation(att).kind(), "attestation");
    }
}

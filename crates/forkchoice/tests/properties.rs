//! Property-based invariants of the proto-array fork choice under random
//! trees and vote streams.

use proptest::prelude::*;

use ethpos_forkchoice::{ForkChoiceStore, ProtoArray};
use ethpos_types::{Epoch, Gwei, Root, Slot};

/// Builds a random tree of `n` nodes: node `i`'s parent is a uniformly
/// random earlier node. Returns the proto-array.
fn random_tree(parents: &[usize]) -> ProtoArray {
    let mut p = ProtoArray::new();
    p.insert(Root::from_u64(0), None, Slot::new(0)).unwrap();
    for (i, &par) in parents.iter().enumerate() {
        let idx = i + 1;
        let parent = par % idx;
        p.insert(
            Root::from_u64(idx as u64),
            Some(Root::from_u64(parent as u64)),
            Slot::new(idx as u64),
        )
        .unwrap();
    }
    p
}

/// Naive LMD-GHOST reference: recompute subtree weights from scratch and
/// walk greedily.
fn naive_head(parents: &[usize], votes: &[(usize, u64)], anchor: usize) -> u64 {
    let n = parents.len() + 1;
    let parent_of = |i: usize| -> Option<usize> {
        if i == 0 {
            None
        } else {
            Some(parents[i - 1] % i)
        }
    };
    // subtree weight of each node = sum of votes on it and descendants
    let mut weight = vec![0u128; n];
    for &(node, w) in votes {
        let mut cur = node;
        loop {
            weight[cur] += w as u128;
            match parent_of(cur) {
                Some(p) => cur = p,
                None => break,
            }
        }
    }
    // walk from anchor via heaviest child (tie-break: larger root,
    // matching the proto-array's byte-wise comparison of Root::from_u64)
    let mut cur = anchor;
    loop {
        let mut best: Option<usize> = None;
        for child in 1..n {
            if parent_of(child) == Some(cur) {
                best = match best {
                    None => Some(child),
                    Some(b) => {
                        if weight[child] > weight[b]
                            || (weight[child] == weight[b]
                                && Root::from_u64(child as u64) > Root::from_u64(b as u64))
                        {
                            Some(child)
                        } else {
                            Some(b)
                        }
                    }
                };
            }
        }
        match best {
            Some(b) => cur = b,
            None => return cur as u64,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The proto-array head equals a from-scratch LMD-GHOST computation
    /// for arbitrary trees and vote placements.
    #[test]
    fn head_matches_naive_reference(
        parents in proptest::collection::vec(any::<usize>(), 1..24),
        votes in proptest::collection::vec((any::<usize>(), 1u64..100), 0..24),
    ) {
        let n = parents.len() + 1;
        let mut p = random_tree(&parents);
        let votes: Vec<(usize, u64)> = votes.into_iter().map(|(v, w)| (v % n, w)).collect();
        let mut deltas = vec![0i128; p.len()];
        for &(node, w) in &votes {
            deltas[node] += w as i128;
        }
        p.apply_score_changes(&deltas);
        let got = p.find_head(&Root::from_u64(0)).unwrap();
        let want = naive_head(&parents, &votes, 0);
        prop_assert_eq!(got, Root::from_u64(want));
    }

    /// The head is always a descendant of the anchor, whatever the anchor.
    #[test]
    fn head_is_descendant_of_anchor(
        parents in proptest::collection::vec(any::<usize>(), 1..24),
        votes in proptest::collection::vec((any::<usize>(), 1u64..100), 0..16),
        anchor in any::<usize>(),
    ) {
        let n = parents.len() + 1;
        let mut p = random_tree(&parents);
        let mut deltas = vec![0i128; p.len()];
        for (node, w) in votes {
            deltas[node % n] += w as i128;
        }
        p.apply_score_changes(&deltas);
        let anchor_root = Root::from_u64((anchor % n) as u64);
        let head = p.find_head(&anchor_root).unwrap();
        prop_assert!(p.is_descendant(&anchor_root, &head));
    }

    /// Applying deltas then their negation restores every weight to zero.
    #[test]
    fn deltas_cancel(
        parents in proptest::collection::vec(any::<usize>(), 1..16),
        votes in proptest::collection::vec((any::<usize>(), 1u64..50), 1..12),
    ) {
        let n = parents.len() + 1;
        let mut p = random_tree(&parents);
        let mut deltas = vec![0i128; p.len()];
        for &(node, w) in &votes {
            deltas[node % n] += w as i128;
        }
        p.apply_score_changes(&deltas);
        let neg: Vec<i128> = deltas.iter().map(|d| -d).collect();
        p.apply_score_changes(&neg);
        for i in 0..p.len() {
            prop_assert_eq!(p.node(i).weight, 0, "node {} kept weight", i);
        }
    }

    /// A vote stream through the store: moving every validator's vote to
    /// one leaf makes that leaf the head.
    #[test]
    fn unanimous_votes_pick_the_target(
        parents in proptest::collection::vec(any::<usize>(), 1..16),
        target in any::<usize>(),
    ) {
        let n = parents.len() + 1;
        let mut store = ForkChoiceStore::new(Root::from_u64(0), 8, 32, 8);
        for (i, &par) in parents.iter().enumerate() {
            let idx = i + 1;
            store
                .on_block(
                    Root::from_u64(idx as u64),
                    Root::from_u64((par % idx) as u64),
                    Slot::new(idx as u64),
                )
                .unwrap();
        }
        let target = target % n;
        for v in 0..8 {
            store.on_attestation(v, Root::from_u64(target as u64), Epoch::new(1));
        }
        let balances = vec![Gwei::from_eth_u64(32); 8];
        let head = store.get_head(&balances).unwrap();
        // the head must be the target itself or one of its descendants
        // (zero-weight descendants win ties below the voted node)
        prop_assert!(
            store.proto_array().is_descendant(&Root::from_u64(target as u64), &head),
            "head {head:?} not under target {target}"
        );
    }
}

//! The proto-array: a flat, append-only block tree with weight
//! propagation and best-descendant links.

use std::collections::HashMap;

use ethpos_types::{Root, Slot};

use crate::ForkChoiceError;

/// One node of the proto-array.
#[derive(Debug, Clone)]
pub struct ProtoNode {
    /// Block root.
    pub root: Root,
    /// Index of the parent node, if any.
    pub parent: Option<usize>,
    /// Block slot.
    pub slot: Slot,
    /// Accumulated attestation weight (Gwei).
    pub weight: u128,
    /// Heaviest child, if any.
    pub best_child: Option<usize>,
    /// Deepest node on the heaviest path through `best_child`.
    pub best_descendant: Option<usize>,
}

/// Append-only proto-array block tree.
///
/// Blocks are inserted in topological order (parents before children,
/// guaranteed because blocks reference parents by root). Weight changes
/// are applied as per-node deltas propagated root-ward in one backward
/// pass, exactly like Lighthouse's `apply_score_changes`.
#[derive(Debug, Clone, Default)]
pub struct ProtoArray {
    nodes: Vec<ProtoNode>,
    indices: HashMap<Root, usize>,
    children: Vec<Vec<usize>>,
}

impl ProtoArray {
    /// Creates an empty tree.
    pub fn new() -> Self {
        ProtoArray::default()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node index of `root`.
    pub fn index_of(&self, root: &Root) -> Option<usize> {
        self.indices.get(root).copied()
    }

    /// Node at `index`.
    pub fn node(&self, index: usize) -> &ProtoNode {
        &self.nodes[index]
    }

    /// True if the tree contains `root`.
    pub fn contains(&self, root: &Root) -> bool {
        self.indices.contains_key(root)
    }

    /// Inserts a block. The parent must already be present (or `None` for
    /// the anchor/genesis block).
    ///
    /// # Errors
    ///
    /// [`ForkChoiceError::DuplicateBlock`] if `root` is already present;
    /// [`ForkChoiceError::UnknownBlock`] if the parent is missing.
    pub fn insert(
        &mut self,
        root: Root,
        parent_root: Option<Root>,
        slot: Slot,
    ) -> Result<usize, ForkChoiceError> {
        if self.contains(&root) {
            return Err(ForkChoiceError::DuplicateBlock(root));
        }
        let parent = match parent_root {
            None => None,
            Some(p) => Some(self.index_of(&p).ok_or(ForkChoiceError::UnknownBlock(p))?),
        };
        let index = self.nodes.len();
        self.nodes.push(ProtoNode {
            root,
            parent,
            slot,
            weight: 0,
            best_child: None,
            best_descendant: None,
        });
        self.indices.insert(root, index);
        self.children.push(Vec::new());
        if let Some(p) = parent {
            self.children[p].push(index);
            self.update_best_links(index);
        }
        Ok(index)
    }

    /// Applies per-node weight deltas (indexed like `nodes`; shorter
    /// slices are zero-extended), propagating each node's delta to its
    /// parent and refreshing best-child/best-descendant links.
    ///
    /// # Panics
    ///
    /// Panics (debug) if a delta would drive a weight negative — callers
    /// must keep vote accounting consistent.
    pub fn apply_score_changes(&mut self, deltas: &[i128]) {
        let mut deltas: Vec<i128> = {
            let mut d = deltas.to_vec();
            d.resize(self.nodes.len(), 0);
            d
        };
        // Backward pass: children before parents (insertion is
        // topological, so index order suffices).
        for i in (0..self.nodes.len()).rev() {
            let delta = deltas[i];
            if delta != 0 {
                let w = self.nodes[i].weight as i128 + delta;
                debug_assert!(w >= 0, "negative weight at node {i}");
                self.nodes[i].weight = w.max(0) as u128;
                if let Some(p) = self.nodes[i].parent {
                    deltas[p] += delta;
                }
            }
        }
        // Refresh best links bottom-up.
        for i in (0..self.nodes.len()).rev() {
            if self.nodes[i].parent.is_some() {
                self.update_best_links(i);
            }
        }
    }

    /// Returns the head: follow `best_descendant` from `anchor_root`.
    ///
    /// # Errors
    ///
    /// [`ForkChoiceError::UnknownJustifiedRoot`] if the anchor is absent.
    pub fn find_head(&self, anchor_root: &Root) -> Result<Root, ForkChoiceError> {
        let idx = self
            .index_of(anchor_root)
            .ok_or(ForkChoiceError::UnknownJustifiedRoot(*anchor_root))?;
        let node = &self.nodes[idx];
        let best = node.best_descendant.unwrap_or(idx);
        Ok(self.nodes[best].root)
    }

    /// True if `descendant` has `ancestor` on its root-ward path
    /// (inclusive).
    pub fn is_descendant(&self, ancestor: &Root, descendant: &Root) -> bool {
        let (Some(a), Some(mut d)) = (self.index_of(ancestor), self.index_of(descendant)) else {
            return false;
        };
        loop {
            if d == a {
                return true;
            }
            match self.nodes[d].parent {
                // parents always have smaller indices; stop early
                Some(p) if d > a => d = p,
                _ => return false,
            }
        }
    }

    /// The root-ward chain from `root` (inclusive) to the anchor.
    pub fn chain_of(&self, root: &Root) -> Vec<Root> {
        let mut out = Vec::new();
        let Some(mut i) = self.index_of(root) else {
            return out;
        };
        loop {
            out.push(self.nodes[i].root);
            match self.nodes[i].parent {
                Some(p) => i = p,
                None => break,
            }
        }
        out
    }

    /// Prunes every node that is not `new_anchor` or one of its
    /// descendants, re-rooting the tree at `new_anchor` (what clients do
    /// when finality advances). Weights and best links are preserved.
    ///
    /// # Errors
    ///
    /// [`ForkChoiceError::UnknownBlock`] if `new_anchor` is absent.
    pub fn prune_to(&mut self, new_anchor: &Root) -> Result<(), ForkChoiceError> {
        let anchor_idx = self
            .index_of(new_anchor)
            .ok_or(ForkChoiceError::UnknownBlock(*new_anchor))?;
        if anchor_idx == 0 {
            return Ok(()); // already the root
        }
        // Mark descendants (topological order ⇒ one forward pass).
        let mut keep = vec![false; self.nodes.len()];
        keep[anchor_idx] = true;
        for i in (anchor_idx + 1)..self.nodes.len() {
            if let Some(p) = self.nodes[i].parent {
                keep[i] = keep[p];
            }
        }
        // Remap indices.
        let mut remap = vec![usize::MAX; self.nodes.len()];
        let mut next = 0usize;
        for (i, &k) in keep.iter().enumerate() {
            if k {
                remap[i] = next;
                next += 1;
            }
        }
        let old_nodes = std::mem::take(&mut self.nodes);
        let old_children = std::mem::take(&mut self.children);
        self.indices.clear();
        for (i, node) in old_nodes.into_iter().enumerate() {
            if !keep[i] {
                continue;
            }
            let new_idx = remap[i];
            let parent = if i == anchor_idx {
                None
            } else {
                node.parent.map(|p| remap[p])
            };
            self.indices.insert(node.root, new_idx);
            self.nodes.push(ProtoNode {
                root: node.root,
                parent,
                slot: node.slot,
                weight: node.weight,
                best_child: node.best_child.and_then(
                    |c| {
                        if keep[c] {
                            Some(remap[c])
                        } else {
                            None
                        }
                    },
                ),
                best_descendant: node.best_descendant.and_then(|d| {
                    if keep[d] {
                        Some(remap[d])
                    } else {
                        None
                    }
                }),
            });
            self.children.push(
                old_children[i]
                    .iter()
                    .filter(|&&c| keep[c])
                    .map(|&c| remap[c])
                    .collect(),
            );
        }
        Ok(())
    }

    /// Re-evaluates whether `child_index` should be its parent's best
    /// child, and updates the parent's best descendant.
    fn update_best_links(&mut self, child_index: usize) {
        let parent_index = match self.nodes[child_index].parent {
            Some(p) => p,
            None => return,
        };
        let child_weight = self.nodes[child_index].weight;
        let child_best_descendant = self.nodes[child_index]
            .best_descendant
            .unwrap_or(child_index);

        let parent = &self.nodes[parent_index];
        let replace = match parent.best_child {
            None => true,
            Some(current) if current == child_index => true,
            Some(current) => {
                let cw = self.nodes[current].weight;
                // Tie-break on root bytes for determinism (spec ties break
                // on highest root lexicographically).
                child_weight > cw
                    || (child_weight == cw
                        && self.nodes[child_index].root > self.nodes[current].root)
            }
        };
        if replace {
            // Verify the incumbent keeps its crown if it is heavier: when
            // current == child_index we must re-compare against siblings.
            let best = self.heaviest_child(parent_index);
            let best_descendant = best.map(|b| self.nodes[b].best_descendant.unwrap_or(b));
            let parent = &mut self.nodes[parent_index];
            parent.best_child = best;
            parent.best_descendant = best_descendant;
            // Propagate the (possibly changed) best descendant upward.
            if let Some(gp) = self.nodes[parent_index].parent {
                let _ = gp;
                self.bubble_best_descendant(parent_index);
            }
        } else {
            // Parent's best child unchanged, but its best descendant may
            // still need to reflect the child's deeper best descendant.
            let parent = &mut self.nodes[parent_index];
            if parent.best_child == Some(child_index) {
                parent.best_descendant = Some(child_best_descendant);
            }
        }
    }

    /// Recomputes the heaviest child of `parent` from its children list.
    fn heaviest_child(&self, parent: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for &i in &self.children[parent] {
            best = match best {
                None => Some(i),
                Some(b) => {
                    let (bw, iw) = (self.nodes[b].weight, self.nodes[i].weight);
                    if iw > bw || (iw == bw && self.nodes[i].root > self.nodes[b].root) {
                        Some(i)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        best
    }

    /// Pushes `node`'s best-descendant change up the ancestor chain.
    fn bubble_best_descendant(&mut self, mut node: usize) {
        while let Some(parent) = self.nodes[node].parent {
            if self.nodes[parent].best_child == Some(node) {
                let bd = self.nodes[node].best_descendant.unwrap_or(node);
                self.nodes[parent].best_descendant = Some(bd);
                node = parent;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: u64) -> Root {
        Root::from_u64(v)
    }

    /// Builds:  0 ─ 1 ─ 2
    ///               └── 3
    fn small_tree() -> ProtoArray {
        let mut p = ProtoArray::new();
        p.insert(r(0), None, Slot::new(0)).unwrap();
        p.insert(r(1), Some(r(0)), Slot::new(1)).unwrap();
        p.insert(r(2), Some(r(1)), Slot::new(2)).unwrap();
        p.insert(r(3), Some(r(1)), Slot::new(2)).unwrap();
        p
    }

    #[test]
    fn head_without_votes_is_deterministic() {
        let p = small_tree();
        // Equal (zero) weights: tie-break on larger root.
        let head = p.find_head(&r(0)).unwrap();
        assert_eq!(head, r(3).max(r(2)));
    }

    #[test]
    fn votes_move_the_head() {
        let mut p = small_tree();
        let i2 = p.index_of(&r(2)).unwrap();
        let mut deltas = vec![0i128; p.len()];
        deltas[i2] = 100;
        p.apply_score_changes(&deltas);
        assert_eq!(p.find_head(&r(0)).unwrap(), r(2));
        // Outvote the other branch.
        let i3 = p.index_of(&r(3)).unwrap();
        let mut deltas = vec![0i128; p.len()];
        deltas[i3] = 150;
        p.apply_score_changes(&deltas);
        assert_eq!(p.find_head(&r(0)).unwrap(), r(3));
    }

    #[test]
    fn weights_propagate_to_ancestors() {
        let mut p = small_tree();
        let i2 = p.index_of(&r(2)).unwrap();
        let mut deltas = vec![0i128; p.len()];
        deltas[i2] = 42;
        p.apply_score_changes(&deltas);
        let i1 = p.index_of(&r(1)).unwrap();
        let i0 = p.index_of(&r(0)).unwrap();
        assert_eq!(p.node(i1).weight, 42);
        assert_eq!(p.node(i0).weight, 42);
    }

    #[test]
    fn negative_deltas_remove_weight() {
        let mut p = small_tree();
        let i2 = p.index_of(&r(2)).unwrap();
        let mut deltas = vec![0i128; p.len()];
        deltas[i2] = 100;
        p.apply_score_changes(&deltas);
        let mut deltas = vec![0i128; p.len()];
        deltas[i2] = -100;
        p.apply_score_changes(&deltas);
        assert_eq!(p.node(i2).weight, 0);
        let i0 = p.index_of(&r(0)).unwrap();
        assert_eq!(p.node(i0).weight, 0);
    }

    #[test]
    fn head_from_intermediate_anchor() {
        let mut p = small_tree();
        let i3 = p.index_of(&r(3)).unwrap();
        let mut deltas = vec![0i128; p.len()];
        deltas[i3] = 10;
        p.apply_score_changes(&deltas);
        // Anchored at block 1, head = 3; anchored at 2, head = 2 itself.
        assert_eq!(p.find_head(&r(1)).unwrap(), r(3));
        assert_eq!(p.find_head(&r(2)).unwrap(), r(2));
    }

    #[test]
    fn duplicate_and_orphan_inserts_fail() {
        let mut p = small_tree();
        assert_eq!(
            p.insert(r(1), Some(r(0)), Slot::new(9)),
            Err(ForkChoiceError::DuplicateBlock(r(1)))
        );
        assert_eq!(
            p.insert(r(9), Some(r(42)), Slot::new(9)),
            Err(ForkChoiceError::UnknownBlock(r(42)))
        );
    }

    #[test]
    fn descendant_relation() {
        let p = small_tree();
        assert!(p.is_descendant(&r(0), &r(3)));
        assert!(p.is_descendant(&r(1), &r(2)));
        assert!(p.is_descendant(&r(2), &r(2)));
        assert!(!p.is_descendant(&r(2), &r(3)));
        assert!(!p.is_descendant(&r(3), &r(1)));
    }

    #[test]
    fn chain_of_walks_to_anchor() {
        let p = small_tree();
        assert_eq!(p.chain_of(&r(2)), vec![r(2), r(1), r(0)]);
        assert_eq!(p.chain_of(&r(9)), Vec::<Root>::new());
    }

    #[test]
    fn prune_keeps_subtree_and_weights() {
        let mut p = small_tree();
        let i2 = p.index_of(&r(2)).unwrap();
        let mut deltas = vec![0i128; p.len()];
        deltas[i2] = 77;
        p.apply_score_changes(&deltas);
        p.prune_to(&r(1)).unwrap();
        assert_eq!(p.len(), 3); // 1, 2, 3
        assert!(!p.contains(&r(0)));
        assert!(p.contains(&r(1)));
        let i2 = p.index_of(&r(2)).unwrap();
        assert_eq!(p.node(i2).weight, 77);
        // head computation still works from the new anchor
        assert_eq!(p.find_head(&r(1)).unwrap(), r(2));
        // and new blocks can be inserted
        p.insert(r(9), Some(r(2)), Slot::new(3)).unwrap();
        assert!(p.is_descendant(&r(1), &r(9)));
    }

    #[test]
    fn prune_to_root_is_noop() {
        let mut p = small_tree();
        p.prune_to(&r(0)).unwrap();
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn prune_unknown_anchor_fails() {
        let mut p = small_tree();
        assert_eq!(
            p.prune_to(&r(42)),
            Err(ForkChoiceError::UnknownBlock(r(42)))
        );
    }

    #[test]
    fn prune_drops_sibling_branch() {
        // After pruning to block 2, its sibling 3 disappears.
        let mut p = small_tree();
        p.prune_to(&r(2)).unwrap();
        assert_eq!(p.len(), 1);
        assert!(!p.contains(&r(3)));
        assert_eq!(p.find_head(&r(2)).unwrap(), r(2));
    }

    #[test]
    fn deep_chain_head() {
        let mut p = ProtoArray::new();
        p.insert(r(0), None, Slot::new(0)).unwrap();
        for i in 1..100u64 {
            p.insert(r(i), Some(r(i - 1)), Slot::new(i)).unwrap();
        }
        assert_eq!(p.find_head(&r(0)).unwrap(), r(99));
        assert_eq!(p.find_head(&r(57)).unwrap(), r(99));
    }

    #[test]
    fn fork_with_competing_weights_converges() {
        // Two long branches from a common ancestor; the heavier wins.
        let mut p = ProtoArray::new();
        p.insert(r(0), None, Slot::new(0)).unwrap();
        for i in 1..=10u64 {
            p.insert(r(i), Some(r(i - 1)), Slot::new(i)).unwrap(); // branch A: 1..10
            p.insert(
                r(100 + i),
                Some(if i == 1 { r(0) } else { r(100 + i - 1) }),
                Slot::new(i),
            )
            .unwrap(); // branch B: 101..110
        }
        let tip_a = p.index_of(&r(10)).unwrap();
        let tip_b = p.index_of(&r(110)).unwrap();
        let mut deltas = vec![0i128; p.len()];
        deltas[tip_a] = 60;
        deltas[tip_b] = 40;
        p.apply_score_changes(&deltas);
        assert_eq!(p.find_head(&r(0)).unwrap(), r(10));
        // Shift 30 weight from A to B.
        let mut deltas = vec![0i128; p.len()];
        deltas[tip_a] = -30;
        deltas[tip_b] = 30;
        p.apply_score_changes(&deltas);
        assert_eq!(p.find_head(&r(0)).unwrap(), r(110));
    }
}

//! Latest-message vote tracking (Lighthouse's `VoteTracker`).

use ethpos_types::{Epoch, Root};

/// Tracks one validator's latest block vote and the vote currently
/// reflected in the proto-array weights.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VoteTracker {
    /// Root whose weight currently includes this validator.
    pub current_root: Option<Root>,
    /// Latest vote received (to be applied at the next delta pass).
    pub next_root: Option<Root>,
    /// Epoch of the latest vote (newer epochs replace older ones).
    pub next_epoch: Epoch,
}

impl VoteTracker {
    /// Registers a vote for `root` at `epoch`, keeping only the newest.
    pub fn observe(&mut self, root: Root, epoch: Epoch) {
        if self.next_root.is_none() || epoch > self.next_epoch {
            self.next_root = Some(root);
            self.next_epoch = epoch;
        }
    }

    /// True if this tracker has a pending change to apply.
    pub fn is_dirty(&self) -> bool {
        self.current_root != self.next_root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newer_epoch_replaces_vote() {
        let mut v = VoteTracker::default();
        v.observe(Root::from_u64(1), Epoch::new(1));
        v.observe(Root::from_u64(2), Epoch::new(2));
        assert_eq!(v.next_root, Some(Root::from_u64(2)));
        assert_eq!(v.next_epoch, Epoch::new(2));
    }

    #[test]
    fn older_epoch_is_ignored() {
        let mut v = VoteTracker::default();
        v.observe(Root::from_u64(2), Epoch::new(2));
        v.observe(Root::from_u64(1), Epoch::new(1));
        assert_eq!(v.next_root, Some(Root::from_u64(2)));
    }

    #[test]
    fn same_epoch_keeps_first() {
        // LMD: one vote per epoch; a second same-epoch vote would be an
        // equivocation and is not applied here (slashing handles it).
        let mut v = VoteTracker::default();
        v.observe(Root::from_u64(1), Epoch::new(3));
        v.observe(Root::from_u64(9), Epoch::new(3));
        assert_eq!(v.next_root, Some(Root::from_u64(1)));
    }

    #[test]
    fn dirty_tracking() {
        let mut v = VoteTracker::default();
        assert!(!v.is_dirty());
        v.observe(Root::from_u64(1), Epoch::new(1));
        assert!(v.is_dirty());
        v.current_root = v.next_root;
        assert!(!v.is_dirty());
    }
}

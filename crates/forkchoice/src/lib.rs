//! LMD-GHOST fork choice with Casper FFG checkpoint gating.
//!
//! The paper's candidate chain (Definition 1) is selected by this crate: a
//! proto-array implementation of *latest-message-driven greedy heaviest
//! observed sub-tree*, walking from the justified checkpoint towards the
//! heaviest descendant, where each validator's weight is its effective
//! balance and only its **latest** block vote counts.
//!
//! The store also implements the historical `SAFE_SLOTS_TO_UPDATE_JUSTIFIED`
//! rule: outside the first `j` slots of an epoch, a newly learned justified
//! checkpoint is parked as *best justified* and only adopted at the next
//! epoch boundary. That `j` is exactly the parameter of the probabilistic
//! bouncing attack (paper §5.3): the attack continues while some Byzantine
//! proposer lands in the first `j` slots.
//!
//! Layout follows Lighthouse's `proto_array` module, compacted.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod proto_array;
pub mod store;
pub mod vote_tracker;

pub use proto_array::ProtoArray;
pub use store::ForkChoiceStore;
pub use vote_tracker::VoteTracker;

/// Fork-choice errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForkChoiceError {
    /// Referenced block is unknown to the store.
    UnknownBlock(ethpos_types::Root),
    /// A block was inserted twice.
    DuplicateBlock(ethpos_types::Root),
    /// The justified root is not in the tree.
    UnknownJustifiedRoot(ethpos_types::Root),
}

impl core::fmt::Display for ForkChoiceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ForkChoiceError::UnknownBlock(r) => write!(f, "unknown block 0x{}", r.short_hex()),
            ForkChoiceError::DuplicateBlock(r) => {
                write!(f, "duplicate block 0x{}", r.short_hex())
            }
            ForkChoiceError::UnknownJustifiedRoot(r) => {
                write!(f, "unknown justified root 0x{}", r.short_hex())
            }
        }
    }
}

impl std::error::Error for ForkChoiceError {}

//! The fork-choice store: proto-array + votes + checkpoint gating.

use ethpos_types::{Checkpoint, Epoch, Gwei, Root, Slot};

use crate::proto_array::ProtoArray;
use crate::vote_tracker::VoteTracker;
use crate::ForkChoiceError;

/// A validator's-eye view of the block tree: blocks, latest messages and
/// the justified/finalized checkpoints the head computation is anchored
/// at.
#[derive(Debug, Clone)]
pub struct ForkChoiceStore {
    proto: ProtoArray,
    votes: Vec<VoteTracker>,
    /// Balance snapshot used for the last delta application.
    applied_balances: Vec<u64>,
    justified: Checkpoint,
    best_justified: Checkpoint,
    finalized: Checkpoint,
    /// First `j` slots of an epoch during which the justified checkpoint
    /// may move immediately.
    safe_slots_to_update_justified: u64,
    slots_per_epoch: u64,
}

impl ForkChoiceStore {
    /// Creates a store anchored at `genesis_root` with `n` validators.
    pub fn new(
        genesis_root: Root,
        n: usize,
        slots_per_epoch: u64,
        safe_slots_to_update_justified: u64,
    ) -> Self {
        let mut proto = ProtoArray::new();
        proto
            .insert(genesis_root, None, Slot::GENESIS)
            .expect("fresh tree accepts the anchor");
        let genesis_checkpoint = Checkpoint::genesis(genesis_root);
        ForkChoiceStore {
            proto,
            votes: vec![VoteTracker::default(); n],
            applied_balances: vec![0; n],
            justified: genesis_checkpoint,
            best_justified: genesis_checkpoint,
            finalized: genesis_checkpoint,
            safe_slots_to_update_justified,
            slots_per_epoch,
        }
    }

    /// The block tree.
    pub fn proto_array(&self) -> &ProtoArray {
        &self.proto
    }

    /// Current justified checkpoint (fork-choice anchor).
    pub fn justified_checkpoint(&self) -> Checkpoint {
        self.justified
    }

    /// Best justified checkpoint seen (pending adoption).
    pub fn best_justified_checkpoint(&self) -> Checkpoint {
        self.best_justified
    }

    /// Finalized checkpoint.
    pub fn finalized_checkpoint(&self) -> Checkpoint {
        self.finalized
    }

    /// True if `root` is known.
    pub fn contains_block(&self, root: &Root) -> bool {
        self.proto.contains(root)
    }

    /// Registers a block (spec `on_block`, tree bookkeeping only; state
    /// transition happens in `ethpos-state`).
    ///
    /// # Errors
    ///
    /// Propagates proto-array insertion failures.
    pub fn on_block(
        &mut self,
        root: Root,
        parent: Root,
        slot: Slot,
    ) -> Result<(), ForkChoiceError> {
        self.proto.insert(root, Some(parent), slot)?;
        Ok(())
    }

    /// Registers a validator's block vote (spec `on_attestation`, LMD
    /// part). Unknown blocks are ignored by the caller's choice — the
    /// simulation delivers in order, so the target is always known.
    pub fn on_attestation(&mut self, validator: usize, block_root: Root, epoch: Epoch) {
        if validator >= self.votes.len() {
            return;
        }
        self.votes[validator].observe(block_root, epoch);
    }

    /// Learns a (possibly) newer justified checkpoint, applying the
    /// `SAFE_SLOTS_TO_UPDATE_JUSTIFIED` gate: inside the first `j` slots
    /// of the epoch the checkpoint moves immediately; later it is parked
    /// in `best_justified` and adopted at the next epoch boundary via
    /// [`ForkChoiceStore::on_tick`].
    pub fn update_justified(&mut self, candidate: Checkpoint, now: Slot) {
        if candidate.epoch > self.best_justified.epoch {
            self.best_justified = candidate;
        }
        if candidate.epoch > self.justified.epoch {
            let offset = now.offset_in_epoch(self.slots_per_epoch);
            if offset < self.safe_slots_to_update_justified {
                self.justified = candidate;
            }
        }
    }

    /// Learns a newer finalized checkpoint and prunes the block tree to
    /// its subtree (finalized blocks are irrevocable, so everything not
    /// descending from the finalized root is dead).
    pub fn update_finalized(&mut self, candidate: Checkpoint) {
        if candidate.epoch > self.finalized.epoch {
            self.finalized = candidate;
            if self.proto.contains(&candidate.root) {
                let _ = self.proto.prune_to(&candidate.root);
                // Votes applied to pruned branches left with the branch;
                // clear their trackers so a later re-insert of the same
                // root does not get a stale subtraction.
                for vote in &mut self.votes {
                    if let Some(cur) = vote.current_root {
                        if !self.proto.contains(&cur) {
                            vote.current_root = None;
                        }
                    }
                }
            }
        }
    }

    /// Slot tick (spec `on_tick`): at an epoch boundary, adopt the best
    /// justified checkpoint.
    pub fn on_tick(&mut self, slot: Slot) {
        if slot.is_epoch_start(self.slots_per_epoch)
            && self.best_justified.epoch > self.justified.epoch
        {
            self.justified = self.best_justified;
        }
    }

    /// Computes the LMD-GHOST head anchored at the justified checkpoint,
    /// weighting votes with `balances` (effective balances, Gwei).
    ///
    /// # Errors
    ///
    /// [`ForkChoiceError::UnknownJustifiedRoot`] if the anchor block is
    /// missing from the tree.
    pub fn get_head(&mut self, balances: &[Gwei]) -> Result<Root, ForkChoiceError> {
        self.apply_pending_votes(balances);
        self.proto.find_head(&self.justified.root)
    }

    /// Folds dirty votes and balance changes into proto-array deltas.
    ///
    /// Invariant: `applied_balances[i]` is exactly the weight currently
    /// sitting on `votes[i].current_root` (0 if that root is `None`).
    fn apply_pending_votes(&mut self, balances: &[Gwei]) {
        let mut deltas = vec![0i128; self.proto.len()];
        let mut changed = false;
        for (i, vote) in self.votes.iter_mut().enumerate() {
            let new_balance = balances.get(i).copied().unwrap_or(Gwei::ZERO).as_u64();
            let old_balance = self.applied_balances[i];
            // Where should the weight sit after this pass? Prefer the new
            // vote target if the block is known; otherwise keep it on the
            // current root until the target arrives.
            let target = match vote.next_root {
                Some(next) if vote.is_dirty() && self.proto.contains(&next) => Some(next),
                _ => vote.current_root,
            };
            if target == vote.current_root && new_balance == old_balance {
                continue;
            }
            if let Some(cur) = vote.current_root {
                if let Some(idx) = self.proto.index_of(&cur) {
                    deltas[idx] -= old_balance as i128;
                    changed = true;
                }
            }
            match target {
                Some(t) => {
                    if let Some(idx) = self.proto.index_of(&t) {
                        deltas[idx] += new_balance as i128;
                        changed = true;
                        vote.current_root = Some(t);
                        self.applied_balances[i] = new_balance;
                    } else {
                        // current root itself vanished (pruned): weight is
                        // gone with it.
                        vote.current_root = None;
                        self.applied_balances[i] = 0;
                    }
                }
                None => {
                    self.applied_balances[i] = 0;
                }
            }
        }
        if changed {
            self.proto.apply_score_changes(&deltas);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: u64) -> Root {
        Root::from_u64(v)
    }

    fn eth(v: u64) -> Gwei {
        Gwei::from_eth_u64(v)
    }

    /// genesis ─ A ─ B
    ///             └─ C
    fn store() -> ForkChoiceStore {
        let mut s = ForkChoiceStore::new(r(0), 4, 32, 8);
        s.on_block(r(1), r(0), Slot::new(1)).unwrap();
        s.on_block(r(2), r(1), Slot::new(2)).unwrap();
        s.on_block(r(3), r(1), Slot::new(2)).unwrap();
        s
    }

    #[test]
    fn head_follows_majority_stake() {
        let mut s = store();
        let balances = vec![eth(32); 4];
        s.on_attestation(0, r(2), Epoch::new(0));
        s.on_attestation(1, r(3), Epoch::new(0));
        s.on_attestation(2, r(3), Epoch::new(0));
        assert_eq!(s.get_head(&balances).unwrap(), r(3));
    }

    #[test]
    fn revote_moves_weight() {
        let mut s = store();
        let balances = vec![eth(32); 4];
        s.on_attestation(0, r(2), Epoch::new(0));
        s.on_attestation(1, r(2), Epoch::new(0));
        s.on_attestation(2, r(3), Epoch::new(0));
        assert_eq!(s.get_head(&balances).unwrap(), r(2));
        // validators 0 and 1 switch in a later epoch
        s.on_attestation(0, r(3), Epoch::new(1));
        s.on_attestation(1, r(3), Epoch::new(1));
        assert_eq!(s.get_head(&balances).unwrap(), r(3));
    }

    #[test]
    fn balance_decay_reweights_votes() {
        let mut s = store();
        let balances = vec![eth(32); 4];
        s.on_attestation(0, r(2), Epoch::new(0));
        s.on_attestation(1, r(3), Epoch::new(0));
        s.on_attestation(2, r(3), Epoch::new(0));
        assert_eq!(s.get_head(&balances).unwrap(), r(3));
        // validators 1,2 leak stake; validator 0 keeps full balance
        let decayed = vec![eth(32), eth(10), eth(10), eth(32)];
        assert_eq!(s.get_head(&decayed).unwrap(), r(2));
    }

    #[test]
    fn justified_gate_inside_safe_slots() {
        let mut s = store();
        let cp = Checkpoint::new(Epoch::new(1), r(1));
        // slot 33: offset 1 < 8 ⇒ immediate adoption
        s.update_justified(cp, Slot::new(33));
        assert_eq!(s.justified_checkpoint(), cp);
    }

    #[test]
    fn justified_gate_outside_safe_slots_defers() {
        let mut s = store();
        let cp = Checkpoint::new(Epoch::new(1), r(1));
        // slot 45: offset 13 ≥ 8 ⇒ parked as best justified
        s.update_justified(cp, Slot::new(45));
        assert_eq!(s.justified_checkpoint().epoch, Epoch::new(0));
        assert_eq!(s.best_justified_checkpoint(), cp);
        // adopted at the next epoch boundary
        s.on_tick(Slot::new(64));
        assert_eq!(s.justified_checkpoint(), cp);
    }

    #[test]
    fn finalized_is_monotone() {
        let mut s = store();
        s.update_finalized(Checkpoint::new(Epoch::new(2), r(1)));
        s.update_finalized(Checkpoint::new(Epoch::new(1), r(3)));
        assert_eq!(s.finalized_checkpoint().epoch, Epoch::new(2));
    }

    #[test]
    fn head_anchors_at_justified_root() {
        let mut s = store();
        let balances = vec![eth(32); 4];
        // all votes on block 2's branch
        s.on_attestation(0, r(2), Epoch::new(0));
        s.on_attestation(1, r(2), Epoch::new(0));
        // move the anchor to block 3: head must be 3 despite weights
        s.update_justified(Checkpoint::new(Epoch::new(1), r(3)), Slot::new(32));
        assert_eq!(s.get_head(&balances).unwrap(), r(3));
    }

    #[test]
    fn finalization_prunes_dead_branches() {
        let mut s = store();
        let balances = vec![eth(32); 4];
        s.on_attestation(0, r(2), Epoch::new(0));
        assert_eq!(s.get_head(&balances).unwrap(), r(2));
        // finalize block 1: genesis is pruned, both children survive
        s.update_finalized(Checkpoint::new(Epoch::new(1), r(1)));
        assert!(!s.proto_array().contains(&r(0)));
        assert!(s.proto_array().contains(&r(2)));
        assert!(s.proto_array().contains(&r(3)));
        // head anchored at the surviving justified region still works
        s.update_justified(Checkpoint::new(Epoch::new(1), r(1)), Slot::new(32));
        assert_eq!(s.get_head(&balances).unwrap(), r(2));
        // vote accounting stays correct after pruning
        s.on_attestation(1, r(3), Epoch::new(1));
        s.on_attestation(2, r(3), Epoch::new(1));
        assert_eq!(s.get_head(&balances).unwrap(), r(3));
    }

    #[test]
    fn votes_for_unknown_blocks_wait() {
        let mut s = store();
        let balances = vec![eth(32); 4];
        s.on_attestation(0, r(99), Epoch::new(0)); // not yet delivered
        s.on_attestation(1, r(2), Epoch::new(0));
        assert_eq!(s.get_head(&balances).unwrap(), r(2));
        // the block arrives; the parked vote must now count
        s.on_block(r(99), r(1), Slot::new(3)).unwrap();
        s.on_attestation(2, r(99), Epoch::new(0));
        assert_eq!(s.get_head(&balances).unwrap(), r(99));
    }
}

//! Property tests for the Byzantine participation schedules:
//! replay determinism for every [`ByzantineSchedule`] implementation,
//! [`BranchStatus`] observation invariants, the structural slashability
//! guarantees of each strategy, and the k-branch [`RoundRobin`]
//! collapsing to the paper's two-branch machines.

use proptest::prelude::*;

use ethpos_types::{BranchId, Epoch};
use ethpos_validator::{
    Bouncing, BranchChoice, BranchStatus, ByzantineSchedule, DualActive, RoundRobin, SemiActive,
    ThresholdSeeker,
};

/// Decodes a raw tuple stream into a plausible per-epoch status
/// sequence: epochs strictly increasing, stakes bounded, per-branch
/// finality derived deterministically from the raw words so replays see
/// the same observations.
fn decode_statuses(raw: &[(u64, u64, u64)]) -> Vec<[BranchStatus; 2]> {
    let mut out = Vec::with_capacity(raw.len());
    for (epoch, &(a, b, c)) in raw.iter().enumerate() {
        let epoch = epoch as u64;
        let status = |branch: u32, x: u64, y: u64| {
            let total = 1 + x % 1_000_000;
            let honest = y % (total + 1);
            let byz = (x ^ y) % (total + 1);
            let justified = if c & (1 << (branch + 2)) != 0 && epoch > 0 {
                epoch - 1
            } else {
                0
            };
            BranchStatus {
                branch: BranchId::new(branch),
                epoch,
                total_active_stake: total,
                honest_active_stake: honest,
                byzantine_stake: byz,
                justified_epoch: justified,
                finalized_epoch: justified.saturating_sub(1),
            }
        };
        out.push([status(0, a, b), status(1, b.rotate_left(7), c)]);
    }
    out
}

/// Runs a schedule over the sequence and collects the decisions.
fn replay<S: ByzantineSchedule>(
    mut schedule: S,
    statuses: &[[BranchStatus; 2]],
) -> Vec<BranchChoice> {
    statuses.iter().map(|st| schedule.participate(st)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every schedule is a deterministic function of the observation
    /// stream: replaying the same statuses on a fresh instance yields
    /// the same decisions.
    #[test]
    fn schedules_are_deterministic_under_replay(
        raw in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 1..64),
        seed in any::<u64>(),
    ) {
        let statuses = decode_statuses(&raw);
        prop_assert_eq!(
            replay(DualActive, &statuses),
            replay(DualActive, &statuses)
        );
        prop_assert_eq!(
            replay(SemiActive::new(), &statuses),
            replay(SemiActive::new(), &statuses)
        );
        prop_assert_eq!(
            replay(ThresholdSeeker::new(), &statuses),
            replay(ThresholdSeeker::new(), &statuses)
        );
        prop_assert_eq!(
            replay(RoundRobin::new(2), &statuses),
            replay(RoundRobin::new(2), &statuses)
        );
        let bouncing = || Bouncing::new(seed, 100, 34, 8, 32);
        prop_assert_eq!(
            replay(bouncing(), &statuses),
            replay(bouncing(), &statuses)
        );
    }

    /// The k-branch round-robin collapses to the paper's two-branch
    /// machines whenever exactly two branches are live: dwell 2 is
    /// decision-for-decision [`SemiActive`], dwell 0 is the
    /// [`ThresholdSeeker`] rotation — on arbitrary observation streams.
    #[test]
    fn round_robin_collapses_to_the_paper_machines_at_k2(
        raw in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 1..96),
    ) {
        let statuses = decode_statuses(&raw);
        prop_assert_eq!(
            replay(RoundRobin::new(2), &statuses),
            replay(SemiActive::new(), &statuses)
        );
        prop_assert_eq!(
            replay(RoundRobin::new(0), &statuses),
            replay(ThresholdSeeker::new(), &statuses)
        );
    }

    /// `BranchStatus` observation invariants: Byzantine help never
    /// lowers the active ratio, ratios stay in [0, 1 + β], and
    /// `two_thirds_reachable` is consistent with the exact integer
    /// inequality and (away from the boundary) with the float ratio.
    #[test]
    fn branch_status_invariants(
        total in 0u64..2_000_000,
        honest_raw in any::<u64>(),
        byz_raw in any::<u64>(),
        epoch in any::<u64>(),
    ) {
        let honest = honest_raw % (total + 1);
        let byz = byz_raw % (total + 1);
        let st = BranchStatus {
            branch: BranchId::GENESIS,
            epoch,
            total_active_stake: total,
            honest_active_stake: honest,
            byzantine_stake: byz,
            justified_epoch: 0,
            finalized_epoch: 0,
        };
        prop_assert!(st.ratio_honest_only() <= st.ratio_with_byzantine() + 1e-12);
        prop_assert!(st.ratio_honest_only() >= 0.0);
        // exact integer definition
        let reachable = 3 * (u128::from(honest) + u128::from(byz)) >= 2 * u128::from(total);
        prop_assert_eq!(st.two_thirds_reachable(), reachable);
        // float consistency away from the boundary
        let ratio = st.ratio_with_byzantine();
        if ratio > 2.0 / 3.0 + 1e-9 {
            prop_assert!(st.two_thirds_reachable());
        }
        if ratio < 2.0 / 3.0 - 1e-9 {
            prop_assert!(!st.two_thirds_reachable());
        }
        // the zero-stake degenerate branch reports zero ratios
        if total == 0 {
            prop_assert_eq!(st.ratio_with_byzantine(), 0.0);
            prop_assert!(st.two_thirds_reachable());
        }
    }

    /// Structural slashability: `DualActive` double-votes every epoch;
    /// `SemiActive`, `ThresholdSeeker` and `RoundRobin` vote **exactly
    /// one** branch every epoch (never a same-epoch double vote ⇒ not
    /// slashable).
    #[test]
    fn slashability_structure_holds(
        raw in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 1..64),
    ) {
        let statuses = decode_statuses(&raw);
        for decision in replay(DualActive, &statuses) {
            prop_assert_eq!(decision, [true, true]);
            prop_assert!(decision.is_double_vote());
        }
        for schedule in [
            replay(SemiActive::new(), &statuses),
            replay(ThresholdSeeker::new(), &statuses),
            replay(RoundRobin::new(2), &statuses),
        ] {
            for (e, decision) in schedule.iter().enumerate() {
                prop_assert_eq!(decision.count(), 1, "epoch {}: voted {:?}", e, decision);
                prop_assert!(!decision.is_double_vote());
            }
        }
    }

    /// The bouncing schedule never double-votes either, and once its
    /// continuation lottery fails it converges on branch 0 forever.
    #[test]
    fn bouncing_converges_after_failure(
        raw in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 8..64),
        seed in any::<u64>(),
        byz in 0u64..50,
    ) {
        let statuses = decode_statuses(&raw);
        let mut schedule = Bouncing::new(seed, 100, byz, 8, 32);
        let decisions: Vec<BranchChoice> = statuses
            .iter()
            .map(|st| schedule.participate(st))
            .collect();
        for decision in &decisions {
            prop_assert_eq!(decision.count(), 1);
        }
        if let Some(failed) = schedule.failed_at {
            for (e, decision) in decisions.iter().enumerate() {
                if e as u64 >= failed {
                    prop_assert_eq!(*decision, [true, false], "epoch {}", e);
                }
            }
            // the recorded failure epoch is the lottery's first miss
            prop_assert!(!schedule.continues_at(Epoch::new(failed)));
        }
    }
}

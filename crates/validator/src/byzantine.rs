//! The paper's Byzantine strategies, expressed as *participation
//! schedules* over the two branches of a fork.
//!
//! The coordinated adversary observes both branches (it is unaffected by
//! the partition) and decides, epoch by epoch, on which branch(es) its
//! validators attest:
//!
//! | Strategy | Paper | Behaviour | Outcome |
//! |---|---|---|---|
//! | [`DualActive`] | §5.2.1 | active on **both** branches every epoch (slashable double votes) | fastest conflicting finalization |
//! | [`SemiActive`] | §5.2.2 | alternate branches; dwell two epochs per branch once ⅔ is reachable | conflicting finalization without slashing |
//! | [`ThresholdSeeker`] | §5.2.3 | alternate forever, refuse to finalize | Byzantine proportion exceeds ⅓ |
//! | [`Bouncing`] | §5.3 | alternate after GST, withholding votes to keep honest validators bouncing | probabilistic breach of the ⅓ threshold |

use ethpos_types::{Epoch, ValidatorIndex};

use crate::duties::ProposerLottery;

/// Per-branch observation handed to a strategy at each epoch: everything
/// the coordinated adversary can compute from that branch's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchStatus {
    /// Branch id (0 or 1).
    pub branch: usize,
    /// Epoch about to be attested.
    pub epoch: u64,
    /// Total active effective balance on this branch (Gwei).
    pub total_active_stake: u64,
    /// Effective balance of the honest validators that will attest this
    /// branch this epoch (Gwei).
    pub honest_active_stake: u64,
    /// Effective balance of the (non-exited) Byzantine validators on this
    /// branch (Gwei).
    pub byzantine_stake: u64,
    /// This branch's current justified epoch.
    pub justified_epoch: u64,
    /// This branch's current finalized epoch.
    pub finalized_epoch: u64,
}

impl BranchStatus {
    /// The active-stake ratio this branch would see **if** the Byzantine
    /// validators attest on it this epoch.
    pub fn ratio_with_byzantine(&self) -> f64 {
        if self.total_active_stake == 0 {
            return 0.0;
        }
        (self.honest_active_stake + self.byzantine_stake) as f64 / self.total_active_stake as f64
    }

    /// The active-stake ratio without Byzantine help.
    pub fn ratio_honest_only(&self) -> f64 {
        if self.total_active_stake == 0 {
            return 0.0;
        }
        self.honest_active_stake as f64 / self.total_active_stake as f64
    }

    /// True if Byzantine participation would push this branch to the ⅔
    /// justification threshold.
    pub fn two_thirds_reachable(&self) -> bool {
        3 * (self.honest_active_stake as u128 + self.byzantine_stake as u128)
            >= 2 * self.total_active_stake as u128
    }
}

/// A Byzantine participation schedule over a two-branch fork.
pub trait ByzantineSchedule: core::fmt::Debug {
    /// Decides whether the Byzantine validators attest on branch 0 / 1 at
    /// this epoch, given both branch observations.
    fn participate(&mut self, status: &[BranchStatus; 2]) -> [bool; 2];

    /// Strategy name for reports.
    fn name(&self) -> &'static str;
}

// ─── §5.2.1: slashable dual voting ──────────────────────────────────────

/// Active on both branches every epoch — equivocating attestations, a
/// slashable offence that stays unpunished while the partition hides the
/// evidence (paper §5.2.1, Fig. 4).
#[derive(Debug, Clone, Default)]
pub struct DualActive;

impl ByzantineSchedule for DualActive {
    fn participate(&mut self, _status: &[BranchStatus; 2]) -> [bool; 2] {
        [true, true]
    }

    fn name(&self) -> &'static str {
        "dual-active (slashable)"
    }
}

// ─── §5.2.2: non-slashable semi-active alternation ──────────────────────

/// Phase of the [`SemiActive`] state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SemiActivePhase {
    /// Alternating between branches (active every other epoch on each).
    Alternate,
    /// Dwelling two consecutive epochs on branch 0 to finalize it.
    DwellFirst { since: u64 },
    /// Dwelling two consecutive epochs on branch 1 to finalize it.
    DwellSecond { since: u64 },
    /// Both branches finalized; keep alternating (harmless).
    Done,
}

/// Alternate between the branches each epoch (never two identical-epoch
/// votes ⇒ not slashable); once both branches can reach ⅔ with Byzantine
/// help, dwell two consecutive epochs on each to finalize them both
/// (paper §5.2.2, Fig. 5).
#[derive(Debug, Clone)]
pub struct SemiActive {
    phase: SemiActivePhase,
}

impl SemiActive {
    /// Creates the strategy in its alternating phase.
    pub fn new() -> Self {
        SemiActive {
            phase: SemiActivePhase::Alternate,
        }
    }

    /// True once both branches have been finalized by the dwell phases.
    pub fn is_done(&self) -> bool {
        self.phase == SemiActivePhase::Done
    }
}

impl Default for SemiActive {
    fn default() -> Self {
        SemiActive::new()
    }
}

impl ByzantineSchedule for SemiActive {
    fn participate(&mut self, status: &[BranchStatus; 2]) -> [bool; 2] {
        let e = status[0].epoch;
        match self.phase {
            SemiActivePhase::Alternate => {
                if status[0].two_thirds_reachable() && status[1].two_thirds_reachable() {
                    self.phase = SemiActivePhase::DwellFirst { since: e };
                    [true, false]
                } else if e.is_multiple_of(2) {
                    [true, false]
                } else {
                    [false, true]
                }
            }
            SemiActivePhase::DwellFirst { since } => {
                if e < since + 2 {
                    [true, false]
                } else if status[0].finalized_epoch + 2 >= since {
                    // branch 0 finalized (or will momentarily): move on
                    self.phase = SemiActivePhase::DwellSecond { since: e };
                    [false, true]
                } else {
                    // keep dwelling until finalization shows up
                    [true, false]
                }
            }
            SemiActivePhase::DwellSecond { since } => {
                if e < since + 2 {
                    [false, true]
                } else if status[1].finalized_epoch + 2 >= since {
                    self.phase = SemiActivePhase::Done;
                    [true, false]
                } else {
                    [false, true]
                }
            }
            SemiActivePhase::Done => {
                if e.is_multiple_of(2) {
                    [true, false]
                } else {
                    [false, true]
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "semi-active (non-slashable)"
    }
}

// ─── §5.2.3: exceed the one-third threshold ─────────────────────────────

/// Alternate forever and *refuse to finalize*, letting the inactivity
/// leak drain honest validators on both branches until the Byzantine
/// stake proportion exceeds ⅓ (paper §5.2.3).
///
/// The strategy records the running maximum of its stake proportion per
/// branch so scenario drivers can report β(t).
#[derive(Debug, Clone, Default)]
pub struct ThresholdSeeker {
    /// Highest Byzantine stake proportion observed on each branch.
    pub max_proportion: [f64; 2],
}

impl ThresholdSeeker {
    /// Creates the strategy.
    pub fn new() -> Self {
        ThresholdSeeker::default()
    }

    /// The Byzantine stake proportion currently observable on `branch`.
    pub fn proportion(status: &BranchStatus) -> f64 {
        if status.total_active_stake == 0 {
            return 0.0;
        }
        status.byzantine_stake as f64 / status.total_active_stake as f64
    }
}

impl ByzantineSchedule for ThresholdSeeker {
    fn participate(&mut self, status: &[BranchStatus; 2]) -> [bool; 2] {
        for (i, st) in status.iter().enumerate() {
            self.max_proportion[i] = self.max_proportion[i].max(Self::proportion(st));
        }
        let e = status[0].epoch;
        if e.is_multiple_of(2) {
            [true, false]
        } else {
            [false, true]
        }
    }

    fn name(&self) -> &'static str {
        "threshold-seeker (β > 1/3)"
    }
}

// ─── §5.3: probabilistic bouncing ───────────────────────────────────────

/// The probabilistic bouncing attack under the inactivity leak: Byzantine
/// validators alternate branches, releasing withheld votes so honest
/// validators keep bouncing between chains. The attack continues at each
/// epoch only if some Byzantine proposer lands in the first `j` slots
/// (paper §5.3).
#[derive(Debug, Clone)]
pub struct Bouncing {
    lottery: ProposerLottery,
    byzantine_threshold: u64,
    j: u64,
    slots_per_epoch: u64,
    /// Epoch at which the attack died (no Byzantine proposer in the first
    /// `j` slots), if it has.
    pub failed_at: Option<u64>,
}

impl Bouncing {
    /// Creates the strategy. Validators `0..byzantine_threshold` are the
    /// Byzantine set (the simulators use this convention).
    pub fn new(seed: u64, n: u64, byzantine_threshold: u64, j: u64, slots_per_epoch: u64) -> Self {
        Bouncing {
            lottery: ProposerLottery::new(seed, n),
            byzantine_threshold,
            j,
            slots_per_epoch,
            failed_at: None,
        }
    }

    /// True if the attack can continue at `epoch`: a Byzantine proposer
    /// occupies one of the first `j` slots.
    pub fn continues_at(&self, epoch: Epoch) -> bool {
        self.lottery
            .any_proposer_in_first_slots(epoch, self.j, self.slots_per_epoch, |v| {
                self.is_byzantine(v)
            })
    }

    /// Whether `v` belongs to the Byzantine set.
    pub fn is_byzantine(&self, v: ValidatorIndex) -> bool {
        v.as_u64() < self.byzantine_threshold
    }

    /// The proposer lottery in use.
    pub fn lottery(&self) -> &ProposerLottery {
        &self.lottery
    }
}

impl ByzantineSchedule for Bouncing {
    fn participate(&mut self, status: &[BranchStatus; 2]) -> [bool; 2] {
        let e = status[0].epoch;
        if self.failed_at.is_none() && !self.continues_at(Epoch::new(e)) {
            self.failed_at = Some(e);
        }
        if self.failed_at.is_some() {
            // Attack over: converge on branch 0 (honest validators follow).
            return [true, false];
        }
        if e.is_multiple_of(2) {
            [true, false]
        } else {
            [false, true]
        }
    }

    fn name(&self) -> &'static str {
        "probabilistic bouncing"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn status(epoch: u64, honest: u64, byz: u64, total: u64) -> BranchStatus {
        BranchStatus {
            branch: 0,
            epoch,
            total_active_stake: total,
            honest_active_stake: honest,
            byzantine_stake: byz,
            justified_epoch: 0,
            finalized_epoch: 0,
        }
    }

    #[test]
    fn dual_active_is_always_on_both() {
        let mut s = DualActive;
        let st = [status(0, 10, 5, 30), status(0, 15, 5, 30)];
        assert_eq!(s.participate(&st), [true, true]);
    }

    #[test]
    fn two_thirds_reachable_is_exact() {
        assert!(status(0, 10, 10, 30).two_thirds_reachable()); // 20/30 = 2/3
        assert!(!status(0, 10, 9, 30).two_thirds_reachable()); // 19/30 < 2/3
    }

    #[test]
    fn semi_active_alternates_before_threshold() {
        let mut s = SemiActive::new();
        let far = [status(0, 10, 2, 100), {
            let mut b = status(0, 10, 2, 100);
            b.branch = 1;
            b
        }];
        assert_eq!(s.participate(&far), [true, false]); // epoch 0
        let mut next = far;
        next[0].epoch = 1;
        next[1].epoch = 1;
        assert_eq!(s.participate(&next), [false, true]); // epoch 1
    }

    #[test]
    fn semi_active_dwells_when_two_thirds_reachable() {
        let mut s = SemiActive::new();
        let near = |e: u64| {
            let mut a = status(e, 50, 20, 100);
            let mut b = status(e, 48, 20, 100);
            a.branch = 0;
            b.branch = 1;
            [a, b]
        };
        // epoch 10: both reachable ⇒ dwell on branch 0 for 2 epochs
        assert_eq!(s.participate(&near(10)), [true, false]);
        assert_eq!(s.participate(&near(11)), [true, false]);
        // epoch 12: branch 0 finalized recently ⇒ dwell on branch 1
        let mut st = near(12);
        st[0].finalized_epoch = 10;
        assert_eq!(s.participate(&st), [false, true]);
        let mut st = near(13);
        st[0].finalized_epoch = 10;
        assert_eq!(s.participate(&st), [false, true]);
        let mut st = near(14);
        st[0].finalized_epoch = 10;
        st[1].finalized_epoch = 12;
        let _ = s.participate(&st);
        assert!(s.is_done());
    }

    #[test]
    fn threshold_seeker_never_dwells() {
        let mut s = ThresholdSeeker::new();
        for e in 0..10u64 {
            let st = [status(e, 50, 40, 100), status(e, 50, 40, 100)];
            let p = s.participate(&st);
            assert_eq!(p, [e % 2 == 0, e % 2 == 1]);
        }
        assert!(s.max_proportion[0] > 0.0);
    }

    #[test]
    fn bouncing_fails_without_byzantine_proposer() {
        // Zero Byzantine validators: the attack dies at epoch 0.
        let mut s = Bouncing::new(1, 100, 0, 8, 32);
        let st = [status(0, 50, 0, 100), status(0, 50, 0, 100)];
        s.participate(&st);
        assert_eq!(s.failed_at, Some(0));
    }

    #[test]
    fn bouncing_with_all_byzantine_never_fails() {
        let mut s = Bouncing::new(1, 100, 100, 8, 32);
        for e in 0..50u64 {
            let st = [status(e, 0, 100, 100), status(e, 0, 100, 100)];
            s.participate(&st);
        }
        assert_eq!(s.failed_at, None);
    }

    #[test]
    fn bouncing_continuation_rate_tracks_beta() {
        let s = Bouncing::new(9, 300, 100, 8, 32);
        let epochs = 3000u64;
        let hits = (0..epochs)
            .filter(|&e| s.continues_at(Epoch::new(e)))
            .count();
        let rate = hits as f64 / epochs as f64;
        let expected = 1.0 - (2.0f64 / 3.0).powi(8);
        assert!((rate - expected).abs() < 0.03, "rate {rate} vs {expected}");
    }
}

//! The paper's Byzantine strategies, expressed as *participation
//! schedules* over the branches of a fork.
//!
//! The coordinated adversary observes every branch (it is unaffected by
//! the partition) and decides, epoch by epoch, on which branch(es) its
//! validators attest. Originally the schedules were hard-wired to the
//! paper's two-branch partition; the partition-timeline engine
//! generalizes the observation to **k live branches**, so a schedule now
//! receives a slice of [`BranchStatus`] (one per live branch, in
//! [`BranchId`] order) and answers with a [`BranchChoice`] bit set over
//! those positions:
//!
//! | Strategy | Paper | Behaviour | Outcome |
//! |---|---|---|---|
//! | [`DualActive`] | §5.2.1 | active on **every** branch every epoch (slashable double votes) | fastest conflicting finalization |
//! | [`SemiActive`] | §5.2.2 | alternate two branches; dwell two epochs per branch once ⅔ is reachable | conflicting finalization without slashing |
//! | [`ThresholdSeeker`] | §5.2.3 | rotate forever, refuse to finalize | Byzantine proportion exceeds ⅓ |
//! | [`Bouncing`] | §5.3 | rotate after GST, withholding votes to keep honest validators bouncing | probabilistic breach of the ⅓ threshold |
//! | [`RoundRobin`] | beyond the paper | the k-branch generalization of semi-active: rotate over all live branches, dwell on each once **all** can reach ⅔ | conflicting finalization across > 2 branches |
//!
//! [`SemiActive`] keeps the paper's exact two-branch state machine (its
//! decisions are pinned byte-for-byte by the golden corpus);
//! [`RoundRobin`] with a dwell of 2 collapses to the same machine when
//! exactly two branches are live, which the property tests assert.

use ethpos_types::{BranchId, Epoch, ValidatorIndex};

use crate::duties::ProposerLottery;

/// Per-branch observation handed to a strategy at each epoch: everything
/// the coordinated adversary can compute from that branch's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchStatus {
    /// Branch id.
    pub branch: BranchId,
    /// Epoch about to be attested.
    pub epoch: u64,
    /// Total active effective balance on this branch (Gwei).
    pub total_active_stake: u64,
    /// Effective balance of the honest validators that will attest this
    /// branch this epoch (Gwei).
    pub honest_active_stake: u64,
    /// Effective balance of the (non-exited) Byzantine validators on this
    /// branch (Gwei).
    pub byzantine_stake: u64,
    /// This branch's current justified epoch.
    pub justified_epoch: u64,
    /// This branch's current finalized epoch.
    pub finalized_epoch: u64,
}

impl BranchStatus {
    /// The active-stake ratio this branch would see **if** the Byzantine
    /// validators attest on it this epoch.
    pub fn ratio_with_byzantine(&self) -> f64 {
        if self.total_active_stake == 0 {
            return 0.0;
        }
        (self.honest_active_stake + self.byzantine_stake) as f64 / self.total_active_stake as f64
    }

    /// The active-stake ratio without Byzantine help.
    pub fn ratio_honest_only(&self) -> f64 {
        if self.total_active_stake == 0 {
            return 0.0;
        }
        self.honest_active_stake as f64 / self.total_active_stake as f64
    }

    /// True if Byzantine participation would push this branch to the ⅔
    /// justification threshold.
    pub fn two_thirds_reachable(&self) -> bool {
        3 * (self.honest_active_stake as u128 + self.byzantine_stake as u128)
            >= 2 * self.total_active_stake as u128
    }
}

/// The set of branches the Byzantine cohort attests on in one epoch: a
/// bit per **position** of the observation slice handed to
/// [`ByzantineSchedule::participate`] (position `i` = the i-th live
/// branch in [`BranchId`] order, which for the paper's two-branch
/// scenarios is simply branch `i`).
///
/// ```
/// use ethpos_validator::BranchChoice;
///
/// let choice = BranchChoice::only(1);
/// assert!(!choice.get(0));
/// assert!(choice.get(1));
/// assert_eq!(choice, [false, true]);
/// assert!(!choice.is_double_vote());
/// assert!(BranchChoice::all(3).is_double_vote());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct BranchChoice(u64);

impl BranchChoice {
    /// The largest number of simultaneously live branches a choice can
    /// address.
    pub const MAX_BRANCHES: usize = 64;

    /// Attest nowhere.
    pub const NONE: BranchChoice = BranchChoice(0);

    /// Attest only on the branch at `position`.
    ///
    /// # Panics
    ///
    /// Panics if `position ≥ 64`.
    pub fn only(position: usize) -> BranchChoice {
        assert!(position < Self::MAX_BRANCHES, "branch position {position}");
        BranchChoice(1 << position)
    }

    /// Attest on all `k` live branches.
    ///
    /// # Panics
    ///
    /// Panics if `k > 64`.
    pub fn all(k: usize) -> BranchChoice {
        assert!(k <= Self::MAX_BRANCHES, "too many branches: {k}");
        if k == Self::MAX_BRANCHES {
            BranchChoice(u64::MAX)
        } else {
            BranchChoice((1u64 << k) - 1)
        }
    }

    /// This choice with the branch at `position` added.
    pub fn with(self, position: usize) -> BranchChoice {
        assert!(position < Self::MAX_BRANCHES, "branch position {position}");
        BranchChoice(self.0 | 1 << position)
    }

    /// Whether the branch at `position` is attested.
    pub fn get(&self, position: usize) -> bool {
        position < Self::MAX_BRANCHES && self.0 >> position & 1 == 1
    }

    /// Number of branches attested.
    pub fn count(&self) -> u32 {
        self.0.count_ones()
    }

    /// True if the choice attests ≥ 2 branches in the same epoch — a
    /// slashable equivocation (§5.2.1).
    pub fn is_double_vote(&self) -> bool {
        self.count() >= 2
    }
}

impl<const N: usize> From<[bool; N]> for BranchChoice {
    fn from(bits: [bool; N]) -> Self {
        let mut mask = 0u64;
        for (i, &b) in bits.iter().enumerate() {
            if b {
                mask |= 1 << i;
            }
        }
        BranchChoice(mask)
    }
}

/// A choice equals a bool array when the first `N` positions match and
/// nothing beyond them is set — so tests read
/// `assert_eq!(choice, [true, false])`.
impl<const N: usize> PartialEq<[bool; N]> for BranchChoice {
    fn eq(&self, other: &[bool; N]) -> bool {
        *self == BranchChoice::from(*other)
    }
}

/// A Byzantine participation schedule over the live branches of a fork.
///
/// `status` holds one observation per live branch, in [`BranchId`]
/// order; the returned [`BranchChoice`] is positional over that slice.
/// The number of live branches can change between epochs when the
/// partition timeline splits or heals.
///
/// Schedules are `Send + Sync` plain data and must be able to clone
/// themselves behind the trait object ([`clone_box`](Self::clone_box)):
/// a simulation is checkpointed by cloning it whole — schedule state
/// included — so a forked run resumes with exactly the decision state
/// the original had at the checkpoint epoch.
pub trait ByzantineSchedule: core::fmt::Debug + Send + Sync {
    /// Decides on which of the observed branches the Byzantine validators
    /// attest at this epoch.
    fn participate(&mut self, status: &[BranchStatus]) -> BranchChoice;

    /// Strategy name for reports.
    fn name(&self) -> &'static str;

    /// Clones the schedule behind the trait object (the standard
    /// `clone_box` pattern; every implementation is
    /// `Box::new(self.clone())`).
    fn clone_box(&self) -> Box<dyn ByzantineSchedule>;
}

impl Clone for Box<dyn ByzantineSchedule> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

// ─── §5.2.1: slashable dual voting ──────────────────────────────────────

/// Active on every branch every epoch — equivocating attestations, a
/// slashable offence that stays unpunished while the partition hides the
/// evidence (paper §5.2.1, Fig. 4).
#[derive(Debug, Clone, Default)]
pub struct DualActive;

impl ByzantineSchedule for DualActive {
    fn participate(&mut self, status: &[BranchStatus]) -> BranchChoice {
        BranchChoice::all(status.len())
    }

    fn name(&self) -> &'static str {
        "dual-active (slashable)"
    }

    fn clone_box(&self) -> Box<dyn ByzantineSchedule> {
        Box::new(self.clone())
    }
}

// ─── §5.2.2: non-slashable semi-active alternation ──────────────────────

/// Phase of the [`SemiActive`] state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SemiActivePhase {
    /// Alternating between branches (active every other epoch on each).
    Alternate,
    /// Dwelling two consecutive epochs on branch 0 to finalize it.
    DwellFirst { since: u64 },
    /// Dwelling two consecutive epochs on branch 1 to finalize it.
    DwellSecond { since: u64 },
    /// Both branches finalized; keep alternating (harmless).
    Done,
}

/// Alternate between the branches each epoch (never two identical-epoch
/// votes ⇒ not slashable); once both branches can reach ⅔ with Byzantine
/// help, dwell two consecutive epochs on each to finalize them both
/// (paper §5.2.2, Fig. 5).
///
/// This is the paper's exact **two-branch** state machine; it panics when
/// observed with k ≠ 2 live branches. Use [`RoundRobin`] for k-branch
/// timelines — with a dwell of 2 it makes the same decisions whenever
/// exactly two branches are live.
#[derive(Debug, Clone)]
pub struct SemiActive {
    phase: SemiActivePhase,
}

impl SemiActive {
    /// Creates the strategy in its alternating phase.
    pub fn new() -> Self {
        SemiActive {
            phase: SemiActivePhase::Alternate,
        }
    }

    /// True once both branches have been finalized by the dwell phases.
    pub fn is_done(&self) -> bool {
        self.phase == SemiActivePhase::Done
    }
}

impl Default for SemiActive {
    fn default() -> Self {
        SemiActive::new()
    }
}

impl ByzantineSchedule for SemiActive {
    fn participate(&mut self, status: &[BranchStatus]) -> BranchChoice {
        assert_eq!(
            status.len(),
            2,
            "SemiActive is the paper's two-branch machine; use RoundRobin \
             for k-branch timelines"
        );
        let e = status[0].epoch;
        match self.phase {
            SemiActivePhase::Alternate => {
                if status[0].two_thirds_reachable() && status[1].two_thirds_reachable() {
                    self.phase = SemiActivePhase::DwellFirst { since: e };
                    BranchChoice::only(0)
                } else if e.is_multiple_of(2) {
                    BranchChoice::only(0)
                } else {
                    BranchChoice::only(1)
                }
            }
            SemiActivePhase::DwellFirst { since } => {
                if e < since + 2 {
                    BranchChoice::only(0)
                } else if status[0].finalized_epoch + 2 >= since {
                    // branch 0 finalized (or will momentarily): move on
                    self.phase = SemiActivePhase::DwellSecond { since: e };
                    BranchChoice::only(1)
                } else {
                    // keep dwelling until finalization shows up
                    BranchChoice::only(0)
                }
            }
            SemiActivePhase::DwellSecond { since } => {
                if e < since + 2 {
                    BranchChoice::only(1)
                } else if status[1].finalized_epoch + 2 >= since {
                    self.phase = SemiActivePhase::Done;
                    BranchChoice::only(0)
                } else {
                    BranchChoice::only(1)
                }
            }
            SemiActivePhase::Done => {
                if e.is_multiple_of(2) {
                    BranchChoice::only(0)
                } else {
                    BranchChoice::only(1)
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "semi-active (non-slashable)"
    }

    fn clone_box(&self) -> Box<dyn ByzantineSchedule> {
        Box::new(self.clone())
    }
}

// ─── §5.2.3: exceed the one-third threshold ─────────────────────────────

/// Rotate over the live branches forever and *refuse to finalize*,
/// letting the inactivity leak drain honest validators on every branch
/// until the Byzantine stake proportion exceeds ⅓ (paper §5.2.3; with
/// two branches this is the paper's pure alternation).
///
/// The strategy records the running maximum of its stake proportion per
/// observed position so scenario drivers can report β(t).
#[derive(Debug, Clone, Default)]
pub struct ThresholdSeeker {
    /// Highest Byzantine stake proportion observed per branch position
    /// (grows to the largest number of simultaneously live branches).
    pub max_proportion: Vec<f64>,
}

impl ThresholdSeeker {
    /// Creates the strategy.
    pub fn new() -> Self {
        ThresholdSeeker::default()
    }

    /// The Byzantine stake proportion currently observable on `branch`.
    pub fn proportion(status: &BranchStatus) -> f64 {
        if status.total_active_stake == 0 {
            return 0.0;
        }
        status.byzantine_stake as f64 / status.total_active_stake as f64
    }
}

impl ByzantineSchedule for ThresholdSeeker {
    fn participate(&mut self, status: &[BranchStatus]) -> BranchChoice {
        if self.max_proportion.len() < status.len() {
            self.max_proportion.resize(status.len(), 0.0);
        }
        for (i, st) in status.iter().enumerate() {
            self.max_proportion[i] = self.max_proportion[i].max(Self::proportion(st));
        }
        let e = status[0].epoch;
        BranchChoice::only(e as usize % status.len())
    }

    fn name(&self) -> &'static str {
        "threshold-seeker (β > 1/3)"
    }

    fn clone_box(&self) -> Box<dyn ByzantineSchedule> {
        Box::new(self.clone())
    }
}

// ─── beyond the paper: k-branch semi-active rotation ────────────────────

/// Where the [`RoundRobin`] dwell machine stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RoundRobinPhase {
    /// Rotating over the live branches, watching for ⅔ reachability.
    Rotate,
    /// Dwelling on `branch` since epoch `since`. The branch is tracked
    /// by id, not by slice position: a heal can remove a lower-id
    /// branch and shift every position, and the dwell must follow the
    /// branch it was finalizing (or restart if that branch is gone).
    Dwell { branch: BranchId, since: u64 },
    /// Every branch finalized; back to rotation for good.
    Done,
}

/// The k-branch generalization of [`SemiActive`]: rotate over the live
/// branches (`epoch % k`, never two same-epoch votes ⇒ not slashable);
/// once **all** live branches can reach ⅔ with Byzantine help, dwell
/// `dwell` consecutive epochs on each branch in position order until
/// each finalizes — conflicting finalization across every branch pair,
/// a scenario the paper's two-branch analysis cannot express.
///
/// With `dwell == 0` the rotation never stops (the k-branch
/// [`ThresholdSeeker`], minus the β bookkeeping). With `dwell == 2` and
/// exactly two live branches the machine is decision-for-decision the
/// paper's [`SemiActive`] (pinned by the validator property tests).
#[derive(Debug, Clone)]
pub struct RoundRobin {
    dwell: u8,
    phase: RoundRobinPhase,
}

impl RoundRobin {
    /// Creates the strategy; `dwell == 0` disables the finalization
    /// phase.
    pub fn new(dwell: u8) -> Self {
        RoundRobin {
            dwell,
            phase: RoundRobinPhase::Rotate,
        }
    }

    /// True once the dwell pass finalized every branch.
    pub fn is_done(&self) -> bool {
        self.phase == RoundRobinPhase::Done
    }
}

impl ByzantineSchedule for RoundRobin {
    fn participate(&mut self, status: &[BranchStatus]) -> BranchChoice {
        let k = status.len();
        let e = status[0].epoch;
        let rotate = BranchChoice::only(e as usize % k);
        if self.dwell == 0 {
            return rotate;
        }
        // A heal can retire the dwelled branch mid-dwell: restart the
        // watch. (If the branch survived, `position` finds it wherever
        // the shrunken slice put it.)
        let position_of = |branch: BranchId| status.iter().position(|s| s.branch == branch);
        if let RoundRobinPhase::Dwell { branch, .. } = self.phase {
            if position_of(branch).is_none() {
                self.phase = RoundRobinPhase::Rotate;
            }
        }
        let dwell = u64::from(self.dwell);
        match self.phase {
            RoundRobinPhase::Rotate => {
                if status.iter().all(BranchStatus::two_thirds_reachable) {
                    self.phase = RoundRobinPhase::Dwell {
                        branch: status[0].branch,
                        since: e,
                    };
                    BranchChoice::only(0)
                } else {
                    rotate
                }
            }
            RoundRobinPhase::Dwell { branch, since } => {
                let position = position_of(branch).expect("checked live above");
                if e < since + dwell {
                    BranchChoice::only(position)
                } else if status[position].finalized_epoch + dwell >= since {
                    // this branch finalized (or will momentarily): move on
                    if position + 1 < k {
                        self.phase = RoundRobinPhase::Dwell {
                            branch: status[position + 1].branch,
                            since: e,
                        };
                        BranchChoice::only(position + 1)
                    } else {
                        self.phase = RoundRobinPhase::Done;
                        BranchChoice::only(0)
                    }
                } else {
                    // keep dwelling until finalization shows up
                    BranchChoice::only(position)
                }
            }
            RoundRobinPhase::Done => rotate,
        }
    }

    fn name(&self) -> &'static str {
        "round-robin (k-branch semi-active)"
    }

    fn clone_box(&self) -> Box<dyn ByzantineSchedule> {
        Box::new(self.clone())
    }
}

// ─── §5.3: probabilistic bouncing ───────────────────────────────────────

/// The probabilistic bouncing attack under the inactivity leak: Byzantine
/// validators rotate over the branches, releasing withheld votes so
/// honest validators keep bouncing between chains. The attack continues
/// at each epoch only if some Byzantine proposer lands in the first `j`
/// slots (paper §5.3).
#[derive(Debug, Clone)]
pub struct Bouncing {
    lottery: ProposerLottery,
    byzantine_threshold: u64,
    j: u64,
    slots_per_epoch: u64,
    /// Epoch at which the attack died (no Byzantine proposer in the first
    /// `j` slots), if it has.
    pub failed_at: Option<u64>,
}

impl Bouncing {
    /// Creates the strategy. Validators `0..byzantine_threshold` are the
    /// Byzantine set (the simulators use this convention).
    pub fn new(seed: u64, n: u64, byzantine_threshold: u64, j: u64, slots_per_epoch: u64) -> Self {
        Bouncing {
            lottery: ProposerLottery::new(seed, n),
            byzantine_threshold,
            j,
            slots_per_epoch,
            failed_at: None,
        }
    }

    /// True if the attack can continue at `epoch`: a Byzantine proposer
    /// occupies one of the first `j` slots.
    pub fn continues_at(&self, epoch: Epoch) -> bool {
        self.lottery
            .any_proposer_in_first_slots(epoch, self.j, self.slots_per_epoch, |v| {
                self.is_byzantine(v)
            })
    }

    /// Whether `v` belongs to the Byzantine set.
    pub fn is_byzantine(&self, v: ValidatorIndex) -> bool {
        v.as_u64() < self.byzantine_threshold
    }

    /// The proposer lottery in use.
    pub fn lottery(&self) -> &ProposerLottery {
        &self.lottery
    }
}

impl ByzantineSchedule for Bouncing {
    fn participate(&mut self, status: &[BranchStatus]) -> BranchChoice {
        let e = status[0].epoch;
        if self.failed_at.is_none() && !self.continues_at(Epoch::new(e)) {
            self.failed_at = Some(e);
        }
        if self.failed_at.is_some() {
            // Attack over: converge on the first branch (honest
            // validators follow).
            return BranchChoice::only(0);
        }
        BranchChoice::only(e as usize % status.len())
    }

    fn name(&self) -> &'static str {
        "probabilistic bouncing"
    }

    fn clone_box(&self) -> Box<dyn ByzantineSchedule> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn status(epoch: u64, honest: u64, byz: u64, total: u64) -> BranchStatus {
        BranchStatus {
            branch: BranchId::GENESIS,
            epoch,
            total_active_stake: total,
            honest_active_stake: honest,
            byzantine_stake: byz,
            justified_epoch: 0,
            finalized_epoch: 0,
        }
    }

    fn on_branch(mut st: BranchStatus, b: u32) -> BranchStatus {
        st.branch = BranchId::new(b);
        st
    }

    #[test]
    fn branch_choice_bit_algebra() {
        assert_eq!(BranchChoice::NONE.count(), 0);
        assert_eq!(BranchChoice::all(3).count(), 3);
        assert_eq!(BranchChoice::only(2), [false, false, true]);
        assert_eq!(BranchChoice::NONE.with(0).with(2).count(), 2);
        assert!(BranchChoice::from([true, true]).is_double_vote());
        assert!(!BranchChoice::from([false, true]).is_double_vote());
        // equality against arrays ignores nothing: trailing set bits fail
        assert_ne!(BranchChoice::all(3), [true, true]);
        assert_eq!(BranchChoice::all(64).count(), 64);
    }

    #[test]
    fn dual_active_is_always_on_every_branch() {
        let mut s = DualActive;
        let st = [status(0, 10, 5, 30), status(0, 15, 5, 30)];
        assert_eq!(s.participate(&st), [true, true]);
        let st3 = [
            status(1, 10, 5, 30),
            status(1, 15, 5, 30),
            status(1, 2, 5, 30),
        ];
        assert_eq!(s.participate(&st3), [true, true, true]);
    }

    #[test]
    fn two_thirds_reachable_is_exact() {
        assert!(status(0, 10, 10, 30).two_thirds_reachable()); // 20/30 = 2/3
        assert!(!status(0, 10, 9, 30).two_thirds_reachable()); // 19/30 < 2/3
    }

    #[test]
    fn semi_active_alternates_before_threshold() {
        let mut s = SemiActive::new();
        let far = [status(0, 10, 2, 100), on_branch(status(0, 10, 2, 100), 1)];
        assert_eq!(s.participate(&far), [true, false]); // epoch 0
        let mut next = far;
        next[0].epoch = 1;
        next[1].epoch = 1;
        assert_eq!(s.participate(&next), [false, true]); // epoch 1
    }

    #[test]
    fn semi_active_dwells_when_two_thirds_reachable() {
        let mut s = SemiActive::new();
        let near = |e: u64| [status(e, 50, 20, 100), on_branch(status(e, 48, 20, 100), 1)];
        // epoch 10: both reachable ⇒ dwell on branch 0 for 2 epochs
        assert_eq!(s.participate(&near(10)), [true, false]);
        assert_eq!(s.participate(&near(11)), [true, false]);
        // epoch 12: branch 0 finalized recently ⇒ dwell on branch 1
        let mut st = near(12);
        st[0].finalized_epoch = 10;
        assert_eq!(s.participate(&st), [false, true]);
        let mut st = near(13);
        st[0].finalized_epoch = 10;
        assert_eq!(s.participate(&st), [false, true]);
        let mut st = near(14);
        st[0].finalized_epoch = 10;
        st[1].finalized_epoch = 12;
        let _ = s.participate(&st);
        assert!(s.is_done());
    }

    #[test]
    #[should_panic(expected = "two-branch machine")]
    fn semi_active_rejects_three_branches() {
        let mut s = SemiActive::new();
        let st = [status(0, 1, 1, 3), status(0, 1, 1, 3), status(0, 1, 1, 3)];
        let _ = s.participate(&st);
    }

    #[test]
    fn threshold_seeker_never_dwells() {
        let mut s = ThresholdSeeker::new();
        for e in 0..10u64 {
            let st = [status(e, 50, 40, 100), status(e, 50, 40, 100)];
            let p = s.participate(&st);
            assert_eq!(p, [e % 2 == 0, e % 2 == 1]);
        }
        assert!(s.max_proportion[0] > 0.0);
    }

    #[test]
    fn threshold_seeker_rotates_over_k_branches() {
        let mut s = ThresholdSeeker::new();
        for e in 0..9u64 {
            let st = [
                status(e, 50, 40, 100),
                status(e, 30, 40, 100),
                status(e, 20, 40, 100),
            ];
            let p = s.participate(&st);
            assert_eq!(p.count(), 1);
            assert!(p.get(e as usize % 3));
        }
        assert_eq!(s.max_proportion.len(), 3);
    }

    #[test]
    fn round_robin_dwell_finalizes_every_branch_in_turn() {
        let mut s = RoundRobin::new(2);
        let far = |e: u64| {
            [
                status(e, 10, 2, 100),
                on_branch(status(e, 10, 2, 100), 1),
                on_branch(status(e, 10, 2, 100), 2),
            ]
        };
        // rotation phase: e % 3
        for e in 0..6u64 {
            assert_eq!(s.participate(&far(e)), BranchChoice::only(e as usize % 3));
        }
        let near = |e: u64| {
            [
                status(e, 50, 20, 100),
                on_branch(status(e, 48, 20, 100), 1),
                on_branch(status(e, 47, 20, 100), 2), // 67/100: exactly past 2/3
            ]
        };
        // all three reachable at epoch 6 ⇒ dwell branch 0
        assert_eq!(s.participate(&near(6)), [true, false, false]);
        assert_eq!(s.participate(&near(7)), [true, false, false]);
        let mut st = near(8);
        st[0].finalized_epoch = 6;
        assert_eq!(s.participate(&st), [false, true, false]);
        let mut st = near(9);
        st[0].finalized_epoch = 6;
        assert_eq!(s.participate(&st), [false, true, false]);
        let mut st = near(10);
        st[0].finalized_epoch = 6;
        st[1].finalized_epoch = 8;
        assert_eq!(s.participate(&st), [false, false, true]);
        let mut st = near(11);
        st[0].finalized_epoch = 6;
        st[1].finalized_epoch = 8;
        assert_eq!(s.participate(&st), [false, false, true]);
        let mut st = near(12);
        st[0].finalized_epoch = 6;
        st[1].finalized_epoch = 8;
        st[2].finalized_epoch = 10;
        let _ = s.participate(&st);
        assert!(s.is_done());
        // done: back to rotation
        assert_eq!(s.participate(&near(13)), BranchChoice::only(13 % 3));
    }

    #[test]
    fn round_robin_survives_a_shrinking_live_set() {
        let mut s = RoundRobin::new(2);
        let near = |e: u64, k: u32| -> Vec<BranchStatus> {
            (0..k)
                .map(|b| on_branch(status(e, 50, 20, 100), b))
                .collect()
        };
        // trigger a dwell on the last of 3 branches
        let _ = s.participate(&near(0, 3));
        let mut st = near(2, 3);
        st[0].finalized_epoch = 1;
        let _ = s.participate(&st);
        let mut st = near(4, 3);
        st[0].finalized_epoch = 1;
        st[1].finalized_epoch = 3;
        let p = s.participate(&st);
        assert_eq!(p, [false, false, true]);
        // the dwelled branch (id 2) is healed away: the machine restarts
        let p = s.participate(&near(5, 2));
        assert_eq!(p.count(), 1);
        for e in 6..10u64 {
            assert_eq!(s.participate(&near(e, 2)).count(), 1);
        }
    }

    #[test]
    fn round_robin_dwell_follows_its_branch_through_a_heal() {
        // Dwelling on branch 1 of [0, 1, 2] when a heal retires branch
        // 0: the dwell must keep voting branch 1 (now at position 0),
        // not silently retarget whatever sits at its old position.
        let mut s = RoundRobin::new(2);
        let near = |e: u64, ids: &[u32]| -> Vec<BranchStatus> {
            ids.iter()
                .map(|&b| on_branch(status(e, 50, 20, 100), b))
                .collect()
        };
        // epoch 10: all reachable ⇒ dwell branch 0; epoch 12: branch 0
        // finalized ⇒ dwell moves to branch 1 (since = 12)
        let _ = s.participate(&near(10, &[0, 1, 2]));
        let _ = s.participate(&near(11, &[0, 1, 2]));
        let mut st = near(12, &[0, 1, 2]);
        st[0].finalized_epoch = 10;
        assert_eq!(s.participate(&st), [false, true, false]);
        // branch 0 heals away; branch 1 is now position 0 and must keep
        // receiving the dwell votes
        let st = near(13, &[1, 2]);
        assert_eq!(s.participate(&st), [true, false]);
        // ...and branch 2's stale finalization (11 + 2 ≥ since) must NOT
        // end branch 1's dwell — the old positional machine read it
        let mut st = near(14, &[1, 2]);
        st[1].finalized_epoch = 11; // branch 2, finalized before the heal
        assert_eq!(s.participate(&st), [true, false], "dwell must stay on 1");
    }

    #[test]
    fn bouncing_fails_without_byzantine_proposer() {
        // Zero Byzantine validators: the attack dies at epoch 0.
        let mut s = Bouncing::new(1, 100, 0, 8, 32);
        let st = [status(0, 50, 0, 100), status(0, 50, 0, 100)];
        s.participate(&st);
        assert_eq!(s.failed_at, Some(0));
    }

    #[test]
    fn bouncing_with_all_byzantine_never_fails() {
        let mut s = Bouncing::new(1, 100, 100, 8, 32);
        for e in 0..50u64 {
            let st = [status(e, 0, 100, 100), status(e, 0, 100, 100)];
            s.participate(&st);
        }
        assert_eq!(s.failed_at, None);
    }

    #[test]
    fn bouncing_continuation_rate_tracks_beta() {
        let s = Bouncing::new(9, 300, 100, 8, 32);
        let epochs = 3000u64;
        let hits = (0..epochs)
            .filter(|&e| s.continues_at(Epoch::new(e)))
            .count();
        let rate = hits as f64 / epochs as f64;
        let expected = 1.0 - (2.0f64 / 3.0).powi(8);
        assert!((rate - expected).abs() < 0.03, "rate {rate} vs {expected}");
    }
}

//! Duty scheduling: proposer lottery and attestation committees.
//!
//! The real protocol derives proposers from RANDAO; the simulation uses a
//! seeded hash lottery with the same statistical property the paper's
//! §5.3 analysis relies on: each slot's proposer is (approximately)
//! uniform over the active validator set, so the probability that none of
//! the first `j` slots of an epoch has a Byzantine proposer is
//! `(1 − β)^j`.

use ethpos_crypto::hash_u64;
use ethpos_types::{Epoch, Slot, ValidatorIndex};

/// Seeded proposer lottery over a fixed validator set.
///
/// # Example
///
/// ```
/// use ethpos_validator::ProposerLottery;
/// use ethpos_types::Slot;
///
/// let lottery = ProposerLottery::new(7, 64);
/// let p = lottery.proposer(Slot::new(42));
/// assert!(p.as_u64() < 64);
/// assert_eq!(p, lottery.proposer(Slot::new(42))); // deterministic
/// ```
#[derive(Debug, Clone)]
pub struct ProposerLottery {
    seed: u64,
    n: u64,
}

impl ProposerLottery {
    /// Creates a lottery over validators `0..n` with the given seed.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(seed: u64, n: u64) -> Self {
        assert!(n > 0, "lottery needs at least one validator");
        ProposerLottery { seed, n }
    }

    /// The proposer of `slot`.
    pub fn proposer(&self, slot: Slot) -> ValidatorIndex {
        let digest = hash_u64(&[0x7072_6f70_6f73_6572, self.seed, slot.as_u64()]);
        let word = u64::from_le_bytes(digest.as_bytes()[..8].try_into().expect("8 bytes"));
        ValidatorIndex::new(word % self.n)
    }

    /// True if any of the first `j` slots of `epoch` has its proposer in
    /// `set` — the §5.3 continuation condition for one epoch.
    pub fn any_proposer_in_first_slots<F>(
        &self,
        epoch: Epoch,
        j: u64,
        slots_per_epoch: u64,
        is_member: F,
    ) -> bool
    where
        F: Fn(ValidatorIndex) -> bool,
    {
        let start = epoch.start_slot(slots_per_epoch);
        (0..j.min(slots_per_epoch)).any(|k| is_member(self.proposer(start + k)))
    }
}

/// The slot within `epoch` at which validator `index` attests: committees
/// are spread round-robin over the epoch's slots (each validator attests
/// exactly once per epoch, like the real protocol).
pub fn attestation_slot(index: ValidatorIndex, epoch: Epoch, slots_per_epoch: u64) -> Slot {
    epoch.start_slot(slots_per_epoch) + (index.as_u64() % slots_per_epoch)
}

/// The validators attesting at `slot` out of a registry of `n`.
pub fn committee_at_slot(slot: Slot, n: usize, slots_per_epoch: u64) -> Vec<ValidatorIndex> {
    let offset = slot.offset_in_epoch(slots_per_epoch);
    (0..n as u64)
        .filter(|i| i % slots_per_epoch == offset)
        .map(ValidatorIndex::new)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn proposer_is_deterministic_and_in_range() {
        let lot = ProposerLottery::new(7, 100);
        for s in 0..1000u64 {
            let p = lot.proposer(Slot::new(s));
            assert!(p.as_u64() < 100);
            assert_eq!(p, lot.proposer(Slot::new(s)));
        }
    }

    #[test]
    fn proposer_distribution_is_roughly_uniform() {
        let n = 10u64;
        let lot = ProposerLottery::new(42, n);
        let mut counts = vec![0u32; n as usize];
        let trials = 20_000u64;
        for s in 0..trials {
            counts[lot.proposer(Slot::new(s)).as_usize()] += 1;
        }
        let expected = trials as f64 / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(
                dev < 0.1,
                "validator {i} proposed {c} times (expected {expected})"
            );
        }
    }

    #[test]
    fn byzantine_proposer_frequency_matches_probability() {
        // With β = 1/3 of validators Byzantine, the fraction of epochs
        // whose first 8 slots contain a Byzantine proposer should approach
        // 1 − (2/3)^8 ≈ 0.961.
        let n = 300u64;
        let byz: HashSet<u64> = (0..100).collect();
        let lot = ProposerLottery::new(3, n);
        let epochs = 4000u64;
        let hits = (0..epochs)
            .filter(|&e| {
                lot.any_proposer_in_first_slots(Epoch::new(e), 8, 32, |v| byz.contains(&v.as_u64()))
            })
            .count();
        let rate = hits as f64 / epochs as f64;
        let expected = 1.0 - (2.0f64 / 3.0).powi(8);
        assert!(
            (rate - expected).abs() < 0.02,
            "rate {rate} vs expected {expected}"
        );
    }

    #[test]
    fn every_validator_attests_once_per_epoch() {
        let n = 70usize;
        let spe = 32;
        let epoch = Epoch::new(3);
        let mut seen = HashSet::new();
        for slot in epoch.slots(spe) {
            for v in committee_at_slot(slot, n, spe) {
                assert!(seen.insert(v), "{v} attested twice");
                assert_eq!(attestation_slot(v, epoch, spe), slot);
            }
        }
        assert_eq!(seen.len(), n);
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = ProposerLottery::new(1, 50);
        let b = ProposerLottery::new(2, 50);
        let same = (0..200u64)
            .filter(|&s| a.proposer(Slot::new(s)) == b.proposer(Slot::new(s)))
            .count();
        assert!(same < 50, "schedules should differ, {same}/200 equal");
    }
}

//! Honest proposer and attester message builders.
//!
//! Honest validators follow the protocol: propose on the fork-choice head,
//! attest with the head as block vote and `(justified → current epoch
//! checkpoint)` as FFG vote, reading everything from their current view's
//! state.

use ethpos_crypto::{sign_root, AggregateSignature, SigningDomain};
use ethpos_state::attestations::block_root;
use ethpos_state::BeaconState;
use ethpos_types::{
    Attestation, AttestationData, BeaconBlock, BeaconBlockBody, Checkpoint, Root,
    SignedBeaconBlock, Slot, ValidatorIndex,
};

/// Builds the attestation data an honest validator derives from its view
/// at `slot`: block vote = `head_root`, FFG source = the state's justified
/// checkpoint, FFG target = the current epoch's checkpoint on the head
/// chain.
pub fn honest_attestation_data(
    state: &BeaconState,
    head_root: Root,
    slot: Slot,
) -> AttestationData {
    let spe = state.config().slots_per_epoch;
    let epoch = slot.epoch(spe);
    let target_root = if slot.is_epoch_start(spe) && head_root == state.latest_block_root() {
        head_root
    } else {
        state.block_root_at_epoch_start(epoch)
    };
    AttestationData {
        slot,
        beacon_block_root: head_root,
        source: state.current_justified_checkpoint(),
        target: Checkpoint::new(epoch, target_root),
    }
}

/// Builds a signed aggregate attestation for `attesters` over `data`.
pub fn build_attestation(attesters: &[ValidatorIndex], data: AttestationData) -> Attestation {
    let message = ethpos_crypto::hash_u64(&[
        data.slot.as_u64(),
        data.target.epoch.as_u64(),
        u64::from_le_bytes(
            data.beacon_block_root.as_bytes()[..8]
                .try_into()
                .expect("8"),
        ),
        u64::from_le_bytes(data.target.root.as_bytes()[..8].try_into().expect("8")),
    ]);
    let indices: Vec<u64> = attesters.iter().map(|v| v.as_u64()).collect();
    let agg = AggregateSignature::over_attesters(&indices, &message);
    Attestation::new(attesters.to_vec(), data, agg.to_signature())
}

/// Builds a signed block on `parent_root` at `slot`, including the given
/// attestations (and slashing evidence, if any).
pub fn build_block(
    proposer: ValidatorIndex,
    slot: Slot,
    parent_root: Root,
    attestations: Vec<Attestation>,
    attester_slashings: Vec<ethpos_types::AttesterSlashing>,
) -> SignedBeaconBlock {
    let block = BeaconBlock {
        slot,
        proposer_index: proposer,
        parent_root,
        body: BeaconBlockBody {
            attestations,
            attester_slashings,
        },
    };
    let root = block_root(&block);
    let sig = sign_root(proposer.as_u64(), SigningDomain::BeaconProposer, &root);
    SignedBeaconBlock::new(block, sig, root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethpos_types::{ChainConfig, Epoch};

    #[test]
    fn attestation_data_reads_view() {
        let mut state = BeaconState::genesis(ChainConfig::minimal(), 8);
        state.process_slots(Slot::new(10)).unwrap();
        let head = state.latest_block_root();
        let data = honest_attestation_data(&state, head, Slot::new(10));
        assert_eq!(data.beacon_block_root, head);
        assert_eq!(data.target.epoch, Epoch::new(1));
        assert_eq!(data.source, state.current_justified_checkpoint());
        assert_eq!(
            data.target.root,
            state.block_root_at_epoch_start(Epoch::new(1))
        );
    }

    #[test]
    fn built_attestation_contains_sorted_attesters() {
        let state = BeaconState::genesis(ChainConfig::minimal(), 8);
        let data = honest_attestation_data(&state, state.latest_block_root(), Slot::new(0));
        let att = build_attestation(&[ValidatorIndex::new(3), ValidatorIndex::new(1)], data);
        assert_eq!(
            att.attesting_indices,
            vec![ValidatorIndex::new(1), ValidatorIndex::new(3)]
        );
    }

    #[test]
    fn built_block_is_self_consistent() {
        let b = build_block(
            ValidatorIndex::new(2),
            Slot::new(5),
            Root::from_u64(9),
            vec![],
            vec![],
        );
        assert_eq!(b.message.slot, Slot::new(5));
        assert_eq!(b.message.parent_root, Root::from_u64(9));
        assert_eq!(b.root, block_root(&b.message));
        // proposer signature verifies
        assert!(ethpos_crypto::verify(
            2,
            SigningDomain::BeaconProposer,
            &b.root,
            b.signature
        ));
    }

    #[test]
    fn same_data_same_aggregate() {
        let state = BeaconState::genesis(ChainConfig::minimal(), 8);
        let data = honest_attestation_data(&state, state.latest_block_root(), Slot::new(0));
        let a = build_attestation(&[ValidatorIndex::new(1), ValidatorIndex::new(2)], data);
        let b = build_attestation(&[ValidatorIndex::new(2), ValidatorIndex::new(1)], data);
        assert_eq!(a, b);
    }
}

//! Validator behaviours.
//!
//! * [`duties`] — who proposes which slot and who attests when (a seeded
//!   lottery standing in for RANDAO);
//! * [`honest`] — protocol-following proposer/attester message builders;
//! * [`byzantine`] — the paper's adversarial strategies as *participation
//!   schedules* over the live branches of a fork:
//!   [`byzantine::DualActive`] (§5.2.1, slashable),
//!   [`byzantine::SemiActive`] (§5.2.2, non-slashable, fastest
//!   finalization), [`byzantine::ThresholdSeeker`] (§5.2.3, maximize the
//!   Byzantine stake proportion), [`byzantine::Bouncing`] (§5.3, the
//!   probabilistic bouncing attack under the inactivity leak) and
//!   [`byzantine::RoundRobin`] (beyond the paper: the k-branch
//!   generalization of the semi-active machine for partition timelines).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod byzantine;
pub mod duties;
pub mod honest;

pub use byzantine::{
    Bouncing, BranchChoice, BranchStatus, ByzantineSchedule, DualActive, RoundRobin, SemiActive,
    ThresholdSeeker,
};
pub use duties::ProposerLottery;

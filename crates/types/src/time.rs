//! Protocol time: slots and epochs.
//!
//! Ethereum PoS measures time in 12-second *slots*; 32 consecutive slots
//! form an *epoch*, the unit at which justification, finalization, and all
//! penalty accounting (including the inactivity leak) happen.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A slot number (12 seconds of protocol time).
///
/// Slots are consecutively numbered from genesis (slot 0).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Slot(u64);

/// An epoch number (32 slots, 6 minutes 24 seconds of protocol time).
///
/// Epochs are the granularity of the finality gadget: checkpoints are
/// epoch-boundary blocks, and the inactivity leak advances once per epoch.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Epoch(u64);

impl Slot {
    /// The genesis slot.
    pub const GENESIS: Slot = Slot(0);

    /// Creates a slot from its number.
    pub const fn new(slot: u64) -> Self {
        Slot(slot)
    }

    /// Returns the raw slot number.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the epoch that contains this slot.
    pub const fn epoch(self, slots_per_epoch: u64) -> Epoch {
        Epoch(self.0 / slots_per_epoch)
    }

    /// Returns this slot's offset within its epoch (`0..slots_per_epoch`).
    pub const fn offset_in_epoch(self, slots_per_epoch: u64) -> u64 {
        self.0 % slots_per_epoch
    }

    /// Returns `true` if this slot is the first slot of its epoch, i.e. a
    /// checkpoint slot.
    pub const fn is_epoch_start(self, slots_per_epoch: u64) -> bool {
        self.0.is_multiple_of(slots_per_epoch)
    }

    /// The next slot.
    pub const fn next(self) -> Slot {
        Slot(self.0 + 1)
    }

    /// The previous slot, saturating at genesis.
    pub const fn prev(self) -> Slot {
        Slot(self.0.saturating_sub(1))
    }

    /// Saturating subtraction of a number of slots.
    pub const fn saturating_sub(self, rhs: u64) -> Slot {
        Slot(self.0.saturating_sub(rhs))
    }
}

impl Epoch {
    /// The genesis epoch.
    pub const GENESIS: Epoch = Epoch(0);

    /// Creates an epoch from its number.
    pub const fn new(epoch: u64) -> Self {
        Epoch(epoch)
    }

    /// Returns the raw epoch number.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the first slot of this epoch (its checkpoint slot).
    pub const fn start_slot(self, slots_per_epoch: u64) -> Slot {
        Slot(self.0 * slots_per_epoch)
    }

    /// Returns the last slot of this epoch.
    pub const fn end_slot(self, slots_per_epoch: u64) -> Slot {
        Slot(self.0 * slots_per_epoch + slots_per_epoch - 1)
    }

    /// The next epoch.
    pub const fn next(self) -> Epoch {
        Epoch(self.0 + 1)
    }

    /// The previous epoch, saturating at genesis.
    pub const fn prev(self) -> Epoch {
        Epoch(self.0.saturating_sub(1))
    }

    /// Saturating subtraction of a number of epochs.
    pub const fn saturating_sub(self, rhs: u64) -> Epoch {
        Epoch(self.0.saturating_sub(rhs))
    }

    /// Iterates over the slots of this epoch, in order.
    pub fn slots(self, slots_per_epoch: u64) -> impl Iterator<Item = Slot> {
        let start = self.start_slot(slots_per_epoch).as_u64();
        (start..start + slots_per_epoch).map(Slot)
    }
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot {}", self.0)
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "epoch {}", self.0)
    }
}

impl Add<u64> for Slot {
    type Output = Slot;
    fn add(self, rhs: u64) -> Slot {
        Slot(self.0 + rhs)
    }
}

impl AddAssign<u64> for Slot {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Slot> for Slot {
    type Output = u64;
    fn sub(self, rhs: Slot) -> u64 {
        self.0 - rhs.0
    }
}

impl Add<u64> for Epoch {
    type Output = Epoch;
    fn add(self, rhs: u64) -> Epoch {
        Epoch(self.0 + rhs)
    }
}

impl AddAssign<u64> for Epoch {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Epoch> for Epoch {
    type Output = u64;
    fn sub(self, rhs: Epoch) -> u64 {
        self.0 - rhs.0
    }
}

impl From<u64> for Slot {
    fn from(v: u64) -> Self {
        Slot(v)
    }
}

impl From<u64> for Epoch {
    fn from(v: u64) -> Self {
        Epoch(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPE: u64 = 32;

    #[test]
    fn slot_to_epoch_boundaries() {
        assert_eq!(Slot::new(0).epoch(SPE), Epoch::new(0));
        assert_eq!(Slot::new(31).epoch(SPE), Epoch::new(0));
        assert_eq!(Slot::new(32).epoch(SPE), Epoch::new(1));
        assert_eq!(Slot::new(63).epoch(SPE), Epoch::new(1));
        assert_eq!(Slot::new(64).epoch(SPE), Epoch::new(2));
    }

    #[test]
    fn epoch_start_and_end_slots() {
        assert_eq!(Epoch::new(0).start_slot(SPE), Slot::new(0));
        assert_eq!(Epoch::new(0).end_slot(SPE), Slot::new(31));
        assert_eq!(Epoch::new(3).start_slot(SPE), Slot::new(96));
        assert_eq!(Epoch::new(3).end_slot(SPE), Slot::new(127));
    }

    #[test]
    fn epoch_start_slot_roundtrip() {
        for e in 0..100 {
            let epoch = Epoch::new(e);
            assert_eq!(epoch.start_slot(SPE).epoch(SPE), epoch);
            assert!(epoch.start_slot(SPE).is_epoch_start(SPE));
        }
    }

    #[test]
    fn offset_in_epoch() {
        assert_eq!(Slot::new(0).offset_in_epoch(SPE), 0);
        assert_eq!(Slot::new(33).offset_in_epoch(SPE), 1);
        assert_eq!(Slot::new(63).offset_in_epoch(SPE), 31);
    }

    #[test]
    fn epoch_slots_iterator_covers_epoch() {
        let slots: Vec<Slot> = Epoch::new(2).slots(SPE).collect();
        assert_eq!(slots.len(), 32);
        assert_eq!(slots[0], Slot::new(64));
        assert_eq!(slots[31], Slot::new(95));
        assert!(slots.iter().all(|s| s.epoch(SPE) == Epoch::new(2)));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Slot::new(5) + 3, Slot::new(8));
        assert_eq!(Slot::new(8) - Slot::new(5), 3);
        assert_eq!(Epoch::new(5).next(), Epoch::new(6));
        assert_eq!(Epoch::new(0).prev(), Epoch::new(0));
        assert_eq!(Slot::new(2).saturating_sub(10), Slot::new(0));
    }

    #[test]
    fn ordering_and_display() {
        assert!(Slot::new(1) < Slot::new(2));
        assert!(Epoch::new(1) < Epoch::new(2));
        assert_eq!(Slot::new(7).to_string(), "slot 7");
        assert_eq!(Epoch::new(7).to_string(), "epoch 7");
    }
}

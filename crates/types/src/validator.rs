//! Validator identifiers.

use core::fmt;

use serde::{Deserialize, Serialize};

/// Index of a validator in the beacon state's registry.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct ValidatorIndex(u64);

impl ValidatorIndex {
    /// Creates an index.
    pub const fn new(i: u64) -> Self {
        ValidatorIndex(i)
    }

    /// Raw index value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Index as `usize`, for registry vector access.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ValidatorIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "validator {}", self.0)
    }
}

impl From<u64> for ValidatorIndex {
    fn from(v: u64) -> Self {
        ValidatorIndex(v)
    }
}

impl From<usize> for ValidatorIndex {
    fn from(v: usize) -> Self {
        ValidatorIndex(v as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let v = ValidatorIndex::new(42);
        assert_eq!(v.as_u64(), 42);
        assert_eq!(v.as_usize(), 42);
        assert_eq!(ValidatorIndex::from(42usize), v);
        assert_eq!(v.to_string(), "validator 42");
    }
}

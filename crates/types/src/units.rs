//! Stake denominations.
//!
//! All balances are tracked in Gwei (10⁻⁹ ETH), exactly like the consensus
//! specification; the paper's continuous model works in ETH, so [`Gwei`]
//! offers lossless conversions in both directions.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Number of Gwei in one ETH.
pub const GWEI_PER_ETH: u64 = 1_000_000_000;

/// A balance in Gwei (10⁻⁹ ETH).
///
/// Arithmetic is saturating on subtraction (balances never go negative,
/// matching `decrease_balance` in the spec) and checked-in-debug on
/// addition.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Gwei(u64);

impl Gwei {
    /// Zero balance.
    pub const ZERO: Gwei = Gwei(0);

    /// Creates a balance from a raw Gwei amount.
    pub const fn new(gwei: u64) -> Self {
        Gwei(gwei)
    }

    /// Creates a balance from a whole number of ETH.
    pub const fn from_eth_u64(eth: u64) -> Self {
        Gwei(eth * GWEI_PER_ETH)
    }

    /// Creates a balance from a (non-negative, finite) fractional ETH
    /// amount, rounding to the nearest Gwei.
    ///
    /// # Panics
    ///
    /// Panics if `eth` is negative, NaN, or too large for `u64`.
    pub fn from_eth_f64(eth: f64) -> Self {
        assert!(
            eth.is_finite() && eth >= 0.0 && eth < u64::MAX as f64 / GWEI_PER_ETH as f64,
            "invalid ETH amount: {eth}"
        );
        Gwei((eth * GWEI_PER_ETH as f64).round() as u64)
    }

    /// Returns the raw Gwei amount.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the balance as fractional ETH.
    pub fn as_eth_f64(self) -> f64 {
        self.0 as f64 / GWEI_PER_ETH as f64
    }

    /// Saturating subtraction (spec `decrease_balance` semantics).
    pub const fn saturating_sub(self, rhs: Gwei) -> Gwei {
        Gwei(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition.
    pub const fn saturating_add(self, rhs: Gwei) -> Gwei {
        Gwei(self.0.saturating_add(rhs.0))
    }

    /// Integer division by a scalar (spec quotient semantics: truncating).
    pub const fn integer_div(self, divisor: u64) -> Gwei {
        Gwei(self.0 / divisor)
    }

    /// `self * numerator / denominator` computed in `u128` to avoid
    /// overflow, truncating like the spec.
    pub const fn mul_div(self, numerator: u64, denominator: u64) -> Gwei {
        Gwei((self.0 as u128 * numerator as u128 / denominator as u128) as u64)
    }

    /// Returns the smaller of two balances.
    pub const fn min(self, other: Gwei) -> Gwei {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two balances.
    pub const fn max(self, other: Gwei) -> Gwei {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// True if the balance is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Gwei {
    type Output = Gwei;
    fn add(self, rhs: Gwei) -> Gwei {
        Gwei(self.0 + rhs.0)
    }
}

impl AddAssign for Gwei {
    fn add_assign(&mut self, rhs: Gwei) {
        self.0 += rhs.0;
    }
}

impl Sub for Gwei {
    type Output = Gwei;
    /// Saturating: balances never go negative.
    fn sub(self, rhs: Gwei) -> Gwei {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for Gwei {
    fn sub_assign(&mut self, rhs: Gwei) {
        *self = self.saturating_sub(rhs);
    }
}

impl Sum for Gwei {
    fn sum<I: Iterator<Item = Gwei>>(iter: I) -> Gwei {
        iter.fold(Gwei::ZERO, |acc, x| acc + x)
    }
}

impl fmt::Display for Gwei {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let eth = self.0 / GWEI_PER_ETH;
        let rem = self.0 % GWEI_PER_ETH;
        if rem == 0 {
            write!(f, "{eth} ETH")
        } else {
            write!(f, "{:.9} ETH", self.as_eth_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn eth_conversions_roundtrip() {
        assert_eq!(Gwei::from_eth_u64(32).as_u64(), 32_000_000_000);
        assert_eq!(Gwei::from_eth_f64(16.75).as_u64(), 16_750_000_000);
        assert!((Gwei::new(16_750_000_000).as_eth_f64() - 16.75).abs() < 1e-12);
    }

    #[test]
    fn subtraction_saturates() {
        assert_eq!(Gwei::new(5) - Gwei::new(10), Gwei::ZERO);
        let mut b = Gwei::new(3);
        b -= Gwei::new(7);
        assert_eq!(b, Gwei::ZERO);
    }

    #[test]
    fn mul_div_no_overflow() {
        // 32 ETH * large score / 2^26 must not overflow u64 intermediates.
        let b = Gwei::from_eth_u64(32);
        let penalty = b.mul_div(u64::MAX / 2, u64::MAX);
        assert!(penalty.as_u64() <= b.as_u64());
    }

    #[test]
    fn mul_div_truncates_like_spec() {
        assert_eq!(Gwei::new(10).mul_div(1, 3), Gwei::new(3));
        assert_eq!(Gwei::new(10).mul_div(2, 3), Gwei::new(6));
    }

    #[test]
    fn sum_and_minmax() {
        let total: Gwei = [Gwei::new(1), Gwei::new(2), Gwei::new(3)].into_iter().sum();
        assert_eq!(total, Gwei::new(6));
        assert_eq!(Gwei::new(1).min(Gwei::new(2)), Gwei::new(1));
        assert_eq!(Gwei::new(1).max(Gwei::new(2)), Gwei::new(2));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Gwei::from_eth_u64(32).to_string(), "32 ETH");
        assert_eq!(Gwei::new(16_750_000_000).to_string(), "16.750000000 ETH");
    }

    #[test]
    #[should_panic]
    fn from_eth_f64_rejects_nan() {
        let _ = Gwei::from_eth_f64(f64::NAN);
    }

    proptest! {
        #[test]
        fn prop_sub_never_underflows(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2) {
            let r = Gwei::new(a) - Gwei::new(b);
            prop_assert!(r.as_u64() <= a);
        }

        #[test]
        fn prop_mul_div_bounded(bal in 0u64..64_000_000_000u64, num in 0u64..1_000_000u64) {
            // numerator <= denominator implies result <= balance
            let denom = 1_000_000u64;
            let r = Gwei::new(bal).mul_div(num, denom);
            prop_assert!(r.as_u64() <= bal);
        }

        #[test]
        fn prop_eth_roundtrip(gwei in 0u64..100_000_000_000u64) {
            let g = Gwei::new(gwei);
            let back = Gwei::from_eth_f64(g.as_eth_f64());
            // f64 has 53 bits of mantissa; amounts < 2^53 Gwei roundtrip exactly.
            prop_assert_eq!(back, g);
        }
    }
}

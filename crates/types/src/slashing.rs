//! Slashing evidence.

use serde::{Deserialize, Serialize};

use crate::attestation::Attestation;
use crate::validator::ValidatorIndex;

/// Evidence that a set of validators signed two conflicting attestations
/// (a *double vote* or a *surround vote*, Casper slashing rules I/II).
///
/// Processing this object slashes every validator that appears in both
/// attestations.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AttesterSlashing {
    /// First conflicting attestation.
    pub attestation_1: Attestation,
    /// Second conflicting attestation.
    pub attestation_2: Attestation,
}

impl AttesterSlashing {
    /// Creates evidence from two attestations.
    pub fn new(attestation_1: Attestation, attestation_2: Attestation) -> Self {
        AttesterSlashing {
            attestation_1,
            attestation_2,
        }
    }

    /// True if the two attestations actually conflict under the Casper
    /// slashing conditions.
    pub fn is_valid_evidence(&self) -> bool {
        self.attestation_1
            .data
            .is_slashable_with(&self.attestation_2.data)
    }

    /// The validators indicted by this evidence: those present in **both**
    /// attestations (sorted ascending).
    pub fn indicted_indices(&self) -> Vec<ValidatorIndex> {
        self.attestation_1
            .attesting_indices
            .iter()
            .copied()
            .filter(|i| self.attestation_2.contains(*i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attestation::{AttestationData, Signature};
    use crate::checkpoint::Checkpoint;
    use crate::root::Root;
    use crate::time::{Epoch, Slot};

    fn att(indices: &[u64], head: u64, target_epoch: u64) -> Attestation {
        Attestation::new(
            indices.iter().map(|&i| i.into()).collect(),
            AttestationData {
                slot: Slot::new(target_epoch * 32),
                beacon_block_root: Root::from_u64(head),
                source: Checkpoint::new(Epoch::new(0), Root::from_u64(0)),
                target: Checkpoint::new(Epoch::new(target_epoch), Root::from_u64(head)),
            },
            Signature(0),
        )
    }

    #[test]
    fn double_vote_evidence_is_valid() {
        let ev = AttesterSlashing::new(att(&[1, 2, 3], 10, 5), att(&[2, 3, 4], 11, 5));
        assert!(ev.is_valid_evidence());
        assert_eq!(ev.indicted_indices(), vec![2u64.into(), 3u64.into()]);
    }

    #[test]
    fn same_attestation_is_not_evidence() {
        let a = att(&[1, 2], 10, 5);
        let ev = AttesterSlashing::new(a.clone(), a);
        assert!(!ev.is_valid_evidence());
    }

    #[test]
    fn disjoint_attesters_indict_nobody() {
        let ev = AttesterSlashing::new(att(&[1, 2], 10, 5), att(&[3, 4], 11, 5));
        assert!(ev.is_valid_evidence());
        assert!(ev.indicted_indices().is_empty());
    }
}

//! Base types for the Ethereum proof-of-stake inactivity-leak reproduction.
//!
//! This crate provides the vocabulary shared by every other crate in the
//! workspace: protocol time ([`Slot`], [`Epoch`]), stake denominations
//! ([`Gwei`]), identifiers ([`ValidatorIndex`], [`Root`]), consensus
//! messages ([`Attestation`], [`BeaconBlock`], [`Checkpoint`]) and the
//! protocol constants bundle ([`ChainConfig`]).
//!
//! The types mirror the Ethereum consensus specification (Bellatrix era,
//! the era analysed by the paper) closely enough that the state-transition
//! crate reads like a consensus client, while staying free of any
//! networking or cryptographic dependencies.
//!
//! # Example
//!
//! ```
//! use ethpos_types::{ChainConfig, Epoch, Slot, Gwei};
//!
//! let config = ChainConfig::mainnet();
//! let slot = Slot::new(70);
//! assert_eq!(slot.epoch(config.slots_per_epoch), Epoch::new(2));
//! assert_eq!(config.max_effective_balance, Gwei::from_eth_u64(32));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod attestation;
pub mod block;
pub mod branch;
pub mod checkpoint;
pub mod config;
pub mod root;
pub mod slashing;
pub mod time;
pub mod units;
pub mod validator;

pub use attestation::{Attestation, AttestationData};
pub use block::{BeaconBlock, BeaconBlockBody, SignedBeaconBlock};
pub use branch::BranchId;
pub use checkpoint::Checkpoint;
pub use config::ChainConfig;
pub use root::Root;
pub use slashing::AttesterSlashing;
pub use time::{Epoch, Slot};
pub use units::Gwei;
pub use validator::ValidatorIndex;

/// Convenient glob-import of the most frequently used types.
pub mod prelude {
    pub use crate::attestation::{Attestation, AttestationData};
    pub use crate::block::{BeaconBlock, BeaconBlockBody, SignedBeaconBlock};
    pub use crate::branch::BranchId;
    pub use crate::checkpoint::Checkpoint;
    pub use crate::config::ChainConfig;
    pub use crate::root::Root;
    pub use crate::slashing::AttesterSlashing;
    pub use crate::time::{Epoch, Slot};
    pub use crate::units::Gwei;
    pub use crate::validator::ValidatorIndex;
}

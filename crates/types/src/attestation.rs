//! Attestations: the votes validators cast once per epoch.
//!
//! An attestation carries two votes (paper §3.2):
//!
//! * the **block vote** (`beacon_block_root`) feeding the LMD-GHOST fork
//!   choice, and
//! * the **checkpoint vote** (`source` → `target`) feeding Casper FFG
//!   justification/finalization — the vote whose correctness determines a
//!   validator's *activity* for inactivity-leak accounting.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::checkpoint::Checkpoint;
use crate::root::Root;
use crate::time::Slot;
use crate::validator::ValidatorIndex;

/// Opaque signature tag.
///
/// The workspace simulates signatures (`ethpos-crypto`); this type is the
/// wire representation. Equality of tags models signature equality.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Signature(pub u64);

/// The data every participant in an attestation signs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AttestationData {
    /// Slot at which the attestation was produced.
    pub slot: Slot,
    /// Head block according to the attester's fork choice (block vote).
    pub beacon_block_root: Root,
    /// FFG source: the attester's current justified checkpoint.
    pub source: Checkpoint,
    /// FFG target: the checkpoint of the attester's current epoch.
    pub target: Checkpoint,
}

impl AttestationData {
    /// True if two attestation data are a *double vote*: same target epoch
    /// but different data — a slashable equivocation (Casper rule I).
    pub fn is_double_vote(&self, other: &AttestationData) -> bool {
        self != other && self.target.epoch == other.target.epoch
    }

    /// True if `self` *surrounds* `other` (Casper rule II):
    /// `self.source.epoch < other.source.epoch` and
    /// `other.target.epoch < self.target.epoch`.
    pub fn surrounds(&self, other: &AttestationData) -> bool {
        self.source.epoch < other.source.epoch && other.target.epoch < self.target.epoch
    }

    /// True if the pair is slashable under either Casper rule.
    pub fn is_slashable_with(&self, other: &AttestationData) -> bool {
        self.is_double_vote(other) || self.surrounds(other) || other.surrounds(self)
    }
}

/// An (aggregated) attestation: the data plus the set of attesting
/// validators and their aggregate signature tag.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Attestation {
    /// Validators that signed `data`, sorted ascending, no duplicates.
    pub attesting_indices: Vec<ValidatorIndex>,
    /// The signed data.
    pub data: AttestationData,
    /// Aggregate signature tag over `data`.
    pub signature: Signature,
}

impl Attestation {
    /// Creates an attestation, sorting and deduplicating the indices.
    pub fn new(
        mut attesting_indices: Vec<ValidatorIndex>,
        data: AttestationData,
        signature: Signature,
    ) -> Self {
        attesting_indices.sort_unstable();
        attesting_indices.dedup();
        Attestation {
            attesting_indices,
            data,
            signature,
        }
    }

    /// Number of attesting validators.
    pub fn num_attesters(&self) -> usize {
        self.attesting_indices.len()
    }

    /// True if `index` attested.
    pub fn contains(&self, index: ValidatorIndex) -> bool {
        self.attesting_indices.binary_search(&index).is_ok()
    }
}

impl fmt::Display for Attestation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "attestation[{} validators] {} head=0x{} {}→{}",
            self.attesting_indices.len(),
            self.data.slot,
            self.data.beacon_block_root.short_hex(),
            self.data.source,
            self.data.target,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Epoch;

    fn data(slot: u64, src: u64, tgt: u64) -> AttestationData {
        AttestationData {
            slot: Slot::new(slot),
            beacon_block_root: Root::from_u64(slot),
            source: Checkpoint::new(Epoch::new(src), Root::from_u64(src)),
            target: Checkpoint::new(Epoch::new(tgt), Root::from_u64(tgt)),
        }
    }

    #[test]
    fn double_vote_detection() {
        let a = data(64, 1, 2);
        let mut b = data(64, 1, 2);
        assert!(!a.is_double_vote(&b)); // identical is not a double vote
        b.beacon_block_root = Root::from_u64(999);
        assert!(a.is_double_vote(&b));
        assert!(a.is_slashable_with(&b));
    }

    #[test]
    fn different_target_epochs_not_double_vote() {
        let a = data(64, 1, 2);
        let b = data(96, 2, 3);
        assert!(!a.is_double_vote(&b));
        assert!(!a.is_slashable_with(&b));
    }

    #[test]
    fn surround_vote_detection() {
        let outer = data(160, 1, 5);
        let inner = data(128, 2, 4);
        assert!(outer.surrounds(&inner));
        assert!(!inner.surrounds(&outer));
        assert!(outer.is_slashable_with(&inner));
        assert!(inner.is_slashable_with(&outer));
    }

    #[test]
    fn attestation_sorts_and_dedups() {
        let att = Attestation::new(
            vec![3u64.into(), 1u64.into(), 3u64.into(), 2u64.into()],
            data(5, 0, 1),
            Signature(0),
        );
        assert_eq!(
            att.attesting_indices,
            vec![1u64.into(), 2u64.into(), 3u64.into()]
        );
        assert!(att.contains(2u64.into()));
        assert!(!att.contains(9u64.into()));
        assert_eq!(att.num_attesters(), 3);
    }
}

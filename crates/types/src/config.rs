//! Protocol constants.
//!
//! The values follow the Ethereum consensus specification in its
//! Bellatrix-era configuration — the configuration in force when the paper
//! was written and the one its arithmetic assumes (the per-epoch inactivity
//! penalty `I·s / 2²⁶` corresponds to `INACTIVITY_SCORE_BIAS = 4` and
//! `INACTIVITY_PENALTY_QUOTIENT_BELLATRIX = 2²⁴`).

use serde::{Deserialize, Serialize};

use crate::units::Gwei;

/// Bundle of protocol constants used by the state transition, fork choice
/// and the simulators.
///
/// Use [`ChainConfig::mainnet`] for paper-faithful numbers, or
/// [`ChainConfig::minimal`] for fast tests (shorter epochs).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainConfig {
    // ── time ────────────────────────────────────────────────────────────
    /// Slots per epoch (mainnet: 32).
    pub slots_per_epoch: u64,
    /// Seconds per slot (mainnet: 12).
    pub seconds_per_slot: u64,

    // ── stake & effective balance ───────────────────────────────────────
    /// Cap on effective balance (mainnet: 32 ETH).
    pub max_effective_balance: Gwei,
    /// Granularity of effective balance (mainnet: 1 ETH).
    pub effective_balance_increment: Gwei,
    /// Validators whose effective balance falls to this value or below are
    /// ejected (mainnet: 16 ETH — reached when the actual balance drops
    /// below 16.75 ETH thanks to hysteresis).
    pub ejection_balance: Gwei,
    /// Hysteresis quotient for effective-balance updates (mainnet: 4).
    pub hysteresis_quotient: u64,
    /// Downward hysteresis multiplier (mainnet: 1 ⇒ −0.25 ETH threshold).
    pub hysteresis_downward_multiplier: u64,
    /// Upward hysteresis multiplier (mainnet: 5 ⇒ +1.25 ETH threshold).
    pub hysteresis_upward_multiplier: u64,

    // ── inactivity leak (paper §4) ──────────────────────────────────────
    /// Added to the inactivity score of an inactive validator each epoch
    /// (mainnet: 4 — the `+4` of paper Eq. 1).
    pub inactivity_score_bias: u64,
    /// Global score reduction applied each epoch outside a leak
    /// (mainnet: 16).
    pub inactivity_score_recovery_rate: u64,
    /// Inactivity penalty quotient (Bellatrix: 2²⁴). The effective
    /// per-epoch penalty divisor is `bias × quotient = 2²⁶`, matching the
    /// paper's Eq. 2.
    pub inactivity_penalty_quotient: u64,
    /// Number of epochs without finality before the leak starts
    /// (mainnet: 4).
    pub min_epochs_to_inactivity_penalty: u64,

    // ── slashing ────────────────────────────────────────────────────────
    /// Initial slashing penalty divisor (Bellatrix: 32).
    pub min_slashing_penalty_quotient: u64,
    /// Proportional (correlation) slashing multiplier (Bellatrix: 3).
    pub proportional_slashing_multiplier: u64,
    /// Length of the sliding slashings vector (mainnet: 8192 epochs).
    pub epochs_per_slashings_vector: u64,
    /// Whistleblower reward divisor (mainnet: 512).
    pub whistleblower_reward_quotient: u64,

    // ── rewards ─────────────────────────────────────────────────────────
    /// Base reward factor (mainnet: 64).
    pub base_reward_factor: u64,
    /// Altair participation weight for timely source votes (14).
    pub timely_source_weight: u64,
    /// Altair participation weight for timely target votes (26).
    pub timely_target_weight: u64,
    /// Altair participation weight for timely head votes (14).
    pub timely_head_weight: u64,
    /// Altair proposer weight (8).
    pub proposer_weight: u64,
    /// Altair weight denominator (64).
    pub weight_denominator: u64,

    // ── modelling switches ──────────────────────────────────────────────
    /// Inactivity-penalty semantics.
    ///
    /// * `false` (spec, Bellatrix): the penalty `I·s/2²⁶` applies **only
    ///   in epochs where the validator missed the timely-target flag**
    ///   (`get_inactivity_penalty_deltas`).
    /// * `true` (paper Eq. 2 / §4.3): the penalty applies **every epoch**
    ///   to any validator with a positive inactivity score.
    ///
    /// The two coincide for always-active and always-inactive validators
    /// but differ by a factor ~2 in the decay exponent for *semi-active*
    /// validators (paper: `e^(−3t²/2²⁸)`; spec: ≈ `e^(−3t²/2²⁹)`) — a
    /// divergence this reproduction documents in EXPERIMENTS.md. The
    /// paper's tables/figures are regenerated with `true`.
    pub paper_inactivity_penalties: bool,

    // ── fork choice ─────────────────────────────────────────────────────
    /// Number of slots at the start of an epoch during which the justified
    /// checkpoint may be updated — the `j` parameter of the probabilistic
    /// bouncing attack (mainnet historical value: 8).
    pub safe_slots_to_update_justified: u64,
}

impl ChainConfig {
    /// Mainnet (Bellatrix-era) constants — the configuration the paper
    /// analyses.
    pub fn mainnet() -> Self {
        ChainConfig {
            slots_per_epoch: 32,
            seconds_per_slot: 12,
            max_effective_balance: Gwei::from_eth_u64(32),
            effective_balance_increment: Gwei::from_eth_u64(1),
            ejection_balance: Gwei::from_eth_u64(16),
            hysteresis_quotient: 4,
            hysteresis_downward_multiplier: 1,
            hysteresis_upward_multiplier: 5,
            inactivity_score_bias: 4,
            inactivity_score_recovery_rate: 16,
            inactivity_penalty_quotient: 1 << 24,
            min_epochs_to_inactivity_penalty: 4,
            min_slashing_penalty_quotient: 32,
            proportional_slashing_multiplier: 3,
            epochs_per_slashings_vector: 8192,
            whistleblower_reward_quotient: 512,
            base_reward_factor: 64,
            timely_source_weight: 14,
            timely_target_weight: 26,
            timely_head_weight: 14,
            proposer_weight: 8,
            weight_denominator: 64,
            paper_inactivity_penalties: false,
            safe_slots_to_update_justified: 8,
        }
    }

    /// A reduced configuration for fast tests: 8-slot epochs, otherwise
    /// mainnet penalty arithmetic.
    pub fn minimal() -> Self {
        ChainConfig {
            slots_per_epoch: 8,
            ..ChainConfig::mainnet()
        }
    }

    /// The paper's modelling configuration: mainnet constants with
    /// attestation rewards/penalties switched off (`base_reward_factor =
    /// 0`).
    ///
    /// The paper's analysis keeps only the inactivity penalty (Eq. 2) and
    /// slashing: *"we focus on penalties predominant during the inactivity
    /// leak […] since during this period attestation penalties tend to be
    /// less significant"* (§6). On mainnet that holds because the base
    /// reward scales with `1/√total_stake` over ~10⁶ validators; in a
    /// small simulated registry the flat penalties would dominate, so this
    /// preset removes them — making simulated registries of any size match
    /// the paper's equations.
    pub fn paper() -> Self {
        ChainConfig {
            base_reward_factor: 0,
            paper_inactivity_penalties: true,
            ..ChainConfig::mainnet()
        }
    }

    /// The combined inactivity-penalty divisor: `bias × quotient`.
    ///
    /// With mainnet values this is `4 × 2²⁴ = 2²⁶`, the denominator of the
    /// paper's Eq. 2: the per-epoch penalty is
    /// `inactivity_score × balance / 2²⁶`.
    pub fn inactivity_penalty_denominator(&self) -> u64 {
        self.inactivity_score_bias * self.inactivity_penalty_quotient
    }

    /// Snaps an actual balance to an effective balance: floored to a whole
    /// effective-balance increment and capped at the maximum — the rule
    /// shared by deposit processing (spec `apply_deposit`) and the
    /// hysteresis update (spec `process_effective_balance_updates`).
    pub fn snapped_effective_balance(&self, balance: Gwei) -> Gwei {
        let increment = self.effective_balance_increment.as_u64();
        Gwei::new(balance.as_u64() - balance.as_u64() % increment).min(self.max_effective_balance)
    }

    /// Actual-balance threshold below which a validator's effective balance
    /// has decayed to `ejection_balance` under downward hysteresis:
    /// `ejection_balance + increment − increment × downward / quotient`,
    /// i.e. 16 + 1 − 0.25 = **16.75 ETH** on mainnet — the ejection
    /// constant quoted by the paper (§4.3).
    pub fn ejection_actual_balance(&self) -> Gwei {
        let downward_threshold = self.effective_balance_increment.mul_div(
            self.hysteresis_downward_multiplier,
            self.hysteresis_quotient,
        );
        self.ejection_balance + self.effective_balance_increment - downward_threshold
    }

    /// Seconds per epoch.
    pub fn seconds_per_epoch(&self) -> u64 {
        self.seconds_per_slot * self.slots_per_epoch
    }
}

impl Default for ChainConfig {
    fn default() -> Self {
        ChainConfig::mainnet()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mainnet_leak_denominator_is_2_pow_26() {
        let c = ChainConfig::mainnet();
        assert_eq!(c.inactivity_penalty_denominator(), 1 << 26);
    }

    #[test]
    fn ejection_actual_balance_is_16_75_eth() {
        let c = ChainConfig::mainnet();
        assert_eq!(c.ejection_actual_balance(), Gwei::from_eth_f64(16.75));
    }

    #[test]
    fn minimal_differs_only_in_epoch_length() {
        let m = ChainConfig::minimal();
        assert_eq!(m.slots_per_epoch, 8);
        assert_eq!(m.inactivity_penalty_denominator(), 1 << 26);
    }

    #[test]
    fn seconds_per_epoch_mainnet() {
        assert_eq!(ChainConfig::mainnet().seconds_per_epoch(), 384); // 6 min 24 s
    }
}

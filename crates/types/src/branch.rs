//! Branch identifiers for partitioned-network simulations.

use core::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of one branch (one chain view) of a partitioned network.
///
/// The two-branch scenarios of the paper use branches `0` and `1`; the
/// k-branch partition-timeline engine assigns a fresh id to every branch
/// a `Split` event creates, so ids are dense (`0..total_branches`) and
/// never reused — a healed branch's id stays retired, which is what lets
/// safety monitors keep attributing its final checkpoints after the heal.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct BranchId(u32);

impl BranchId {
    /// The genesis branch: the single view every timeline starts from.
    pub const GENESIS: BranchId = BranchId(0);

    /// Creates a branch id.
    pub const fn new(id: u32) -> Self {
        BranchId(id)
    }

    /// The id as `u32`.
    pub const fn as_u32(&self) -> u32 {
        self.0
    }

    /// The id as `u64` (synthetic checkpoint roots are keyed on this).
    pub const fn as_u64(&self) -> u64 {
        self.0 as u64
    }

    /// The id as `usize` (branch ids are dense, so they double as
    /// indices into per-branch tables).
    pub const fn as_usize(&self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BranchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for BranchId {
    fn from(id: u32) -> Self {
        BranchId(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_displayable() {
        assert_eq!(BranchId::GENESIS, BranchId::new(0));
        assert!(BranchId::new(1) < BranchId::new(2));
        assert_eq!(BranchId::new(7).to_string(), "7");
        assert_eq!(BranchId::new(7).as_usize(), 7);
        assert_eq!(BranchId::from(3u32).as_u64(), 3);
    }
}

//! Beacon blocks.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::attestation::{Attestation, Signature};
use crate::root::Root;
use crate::slashing::AttesterSlashing;
use crate::time::Slot;
use crate::validator::ValidatorIndex;

/// The body of a beacon block: the consensus payload relevant to this
/// reproduction (attestations and slashing evidence).
///
/// Execution payloads, deposits and exits are out of scope for the paper's
/// analysis and are omitted.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BeaconBlockBody {
    /// Attestations included by the proposer.
    pub attestations: Vec<Attestation>,
    /// Attester-slashing evidence (pairs of conflicting attestations).
    pub attester_slashings: Vec<AttesterSlashing>,
}

/// A beacon block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BeaconBlock {
    /// Slot the block was proposed for.
    pub slot: Slot,
    /// Index of the proposer.
    pub proposer_index: ValidatorIndex,
    /// Root of the parent block.
    pub parent_root: Root,
    /// Consensus payload.
    pub body: BeaconBlockBody,
}

impl BeaconBlock {
    /// Creates an empty-bodied block.
    pub fn empty(slot: Slot, proposer_index: ValidatorIndex, parent_root: Root) -> Self {
        BeaconBlock {
            slot,
            proposer_index,
            parent_root,
            body: BeaconBlockBody::default(),
        }
    }

    /// The canonical genesis block.
    pub fn genesis() -> Self {
        BeaconBlock::empty(Slot::GENESIS, ValidatorIndex::new(0), Root::ZERO)
    }
}

/// A block together with its root and the proposer's signature tag.
///
/// The root is computed once at signing time (`ethpos-crypto`) and carried
/// alongside the block, mirroring how consensus clients cache block roots.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignedBeaconBlock {
    /// The block.
    pub message: BeaconBlock,
    /// Proposer signature tag.
    pub signature: Signature,
    /// Cached root of `message`.
    pub root: Root,
}

impl SignedBeaconBlock {
    /// Wraps a block with its (pre-computed) root and signature.
    pub fn new(message: BeaconBlock, signature: Signature, root: Root) -> Self {
        SignedBeaconBlock {
            message,
            signature,
            root,
        }
    }
}

impl fmt::Display for BeaconBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "block@{} by {} parent=0x{} ({} atts, {} slashings)",
            self.slot,
            self.proposer_index,
            self.parent_root.short_hex(),
            self.body.attestations.len(),
            self.body.attester_slashings.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genesis_block_shape() {
        let g = BeaconBlock::genesis();
        assert_eq!(g.slot, Slot::GENESIS);
        assert_eq!(g.parent_root, Root::ZERO);
        assert!(g.body.attestations.is_empty());
    }

    #[test]
    fn display_mentions_contents() {
        let b = BeaconBlock::empty(Slot::new(9), ValidatorIndex::new(3), Root::from_u64(1));
        let s = b.to_string();
        assert!(s.contains("slot 9"));
        assert!(s.contains("validator 3"));
        assert!(s.contains("0 atts"));
    }
}

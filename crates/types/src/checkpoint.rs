//! Checkpoints: the objects the finality gadget votes over.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::root::Root;
use crate::time::Epoch;

/// A checkpoint is a pair (block root, epoch): the block of the first slot
/// of the epoch (or the latest block preceding it if that slot is empty).
///
/// Casper FFG votes are *source → target* checkpoint pairs; a checkpoint is
/// **justified** when ≥ ⅔ of the stake casts the same vote targeting it,
/// and **finalized** when it is justified and directly followed by another
/// justified checkpoint.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Checkpoint {
    /// Epoch of the checkpoint.
    pub epoch: Epoch,
    /// Root of the checkpoint block.
    pub root: Root,
}

impl Checkpoint {
    /// Creates a checkpoint.
    pub const fn new(epoch: Epoch, root: Root) -> Self {
        Checkpoint { epoch, root }
    }

    /// The genesis checkpoint for a given genesis block root.
    pub const fn genesis(root: Root) -> Self {
        Checkpoint {
            epoch: Epoch::GENESIS,
            root,
        }
    }
}

impl fmt::Display for Checkpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, 0x{})", self.epoch, self.root.short_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_by_epoch_first() {
        let a = Checkpoint::new(Epoch::new(1), Root::from_u64(99));
        let b = Checkpoint::new(Epoch::new(2), Root::from_u64(1));
        assert!(a < b);
    }

    #[test]
    fn genesis_checkpoint() {
        let g = Checkpoint::genesis(Root::from_u64(7));
        assert_eq!(g.epoch, Epoch::GENESIS);
        assert_eq!(g.root, Root::from_u64(7));
    }

    #[test]
    fn display() {
        let c = Checkpoint::new(Epoch::new(3), Root::from_u64(0));
        assert_eq!(c.to_string(), "(epoch 3, 0x00000000)");
    }
}

//! 256-bit roots identifying blocks and other hashed objects.

use core::fmt;

use serde::{Deserialize, Serialize};

/// A 32-byte hash root identifying a block (or any hashed object).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Root(pub [u8; 32]);

impl Root {
    /// The all-zero root, used for "empty" references (e.g. genesis parent).
    pub const ZERO: Root = Root([0u8; 32]);

    /// Builds a root from raw bytes.
    pub const fn new(bytes: [u8; 32]) -> Self {
        Root(bytes)
    }

    /// Builds a deterministic root from a `u64` label.
    ///
    /// Handy for tests and synthetic fixtures; real block roots come from
    /// `ethpos-crypto` hashing.
    pub fn from_u64(v: u64) -> Self {
        let mut bytes = [0u8; 32];
        bytes[..8].copy_from_slice(&v.to_le_bytes());
        Root(bytes)
    }

    /// Returns the raw bytes.
    pub const fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// True if this is the all-zero root.
    pub fn is_zero(&self) -> bool {
        self.0 == [0u8; 32]
    }

    /// Short hexadecimal prefix (8 hex chars) for human-readable logs.
    pub fn short_hex(&self) -> String {
        self.0[..4].iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl fmt::Debug for Root {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Root(0x{}…)", self.short_hex())
    }
}

impl fmt::Display for Root {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x")?;
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_root() {
        assert!(Root::ZERO.is_zero());
        assert!(!Root::from_u64(1).is_zero());
    }

    #[test]
    fn from_u64_is_injective_on_small_values() {
        for a in 0..100u64 {
            for b in (a + 1)..100u64 {
                assert_ne!(Root::from_u64(a), Root::from_u64(b));
            }
        }
    }

    #[test]
    fn display_and_short_hex() {
        let r = Root::from_u64(0x0102_0304);
        assert_eq!(r.short_hex(), "04030201");
        assert!(r.to_string().starts_with("0x04030201"));
        assert_eq!(r.to_string().len(), 2 + 64);
    }
}

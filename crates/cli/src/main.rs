//! `ethpos-cli` — regenerate any table or figure of *Byzantine Attacks
//! Exploiting Penalties in Ethereum PoS* (Pavloff, Amoussou-Guenou,
//! Tucci-Piergiovanni — DSN 2024) from the analytical model.
//!
//! ```bash
//! cargo run --release -p ethpos-cli -- table2        # one experiment
//! cargo run --release -p ethpos-cli -- fig2 fig10    # several
//! cargo run --release -p ethpos-cli -- all           # the whole paper
//! cargo run --release -p ethpos-cli -- all --format json
//! cargo run --release -p ethpos-cli -- --list
//!
//! # Beyond the paper: parameter sweeps on the deterministic thread pool
//! # (the thread count never changes a single output byte):
//! cargo run --release -p ethpos-cli -- sweep --grid beta0=0.3,0.33,0.333 \
//!     --grid semantics=paper,spec --threads 8 --format json
//! cargo run --release -p ethpos-cli -- fig10 --threads 8
//!
//! # Discrete cross-checks at the paper's true population size, on the
//! # cohort-compressed state backend (exact spec arithmetic, interactive
//! # at a million validators):
//! cargo run --release -p ethpos-cli -- fig2 table2 --validators 1000000 \
//!     --backend cohort
//!
//! # Beyond the paper: search the adversary strategy space for the
//! # worst-case damage-vs-cost frontier (rediscovers the paper's
//! # dual-active and semi-active strategies as the frontier's ends):
//! cargo run --release -p ethpos-cli -- search \
//!     --objective non-slashable-horizon --out frontier.json --format json
//!
//! # Beyond the paper: a randomized chaos campaign — sampled timelines ×
//! # adversaries checked against safety/liveness oracles derived from
//! # the paper's closed forms, with minimized reproducers for anything
//! # unexpected:
//! cargo run --release -p ethpos-cli -- chaos --budget 512 --seed 1 \
//!     --out chaos.json --format json
//! ```

use std::process::ExitCode;

use ethpos_cli::{parse_args, regen_golden, run_full, Cli, CliError, USAGE};

fn main() -> ExitCode {
    match parse_args(std::env::args().skip(1)) {
        // Fixture regeneration is a write with its own failure mode: a
        // bad destination must exit non-zero, never report success.
        Ok(Cli::RegenGolden { dir }) => match regen_golden(&dir) {
            Ok(message) => {
                print!("{message}");
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("error: {err}");
                ExitCode::FAILURE
            }
        },
        // `serve` never returns on success: bind, announce the resolved
        // address (tests and scripts parse it, so it goes to stdout and
        // is flushed before blocking), then serve forever.
        Ok(Cli::Serve {
            addr,
            cache_dir,
            threads,
        }) => {
            let config = ethpos_server::ServerConfig {
                addr,
                cache_dir,
                threads,
                ..ethpos_server::ServerConfig::default()
            };
            let server = match ethpos_server::Server::bind(&config) {
                Ok(server) => server,
                Err(err) => {
                    eprintln!("error: cannot start the server on `{}`: {err}", config.addr);
                    return ExitCode::FAILURE;
                }
            };
            match server.local_addr() {
                Ok(addr) => {
                    use std::io::Write;
                    println!("ethpos-server listening on http://{addr}");
                    let _ = std::io::stdout().flush();
                }
                Err(err) => {
                    eprintln!("error: cannot resolve the listen address: {err}");
                    return ExitCode::FAILURE;
                }
            }
            server.serve()
        }
        Ok(cli) => {
            // Probe the destination up front so a typo'd path fails in
            // milliseconds, not after a long simulation — without
            // truncating a pre-existing artifact (an interrupted run
            // must not destroy the previous good output).
            let obs = cli.obs();
            let obs_paths = obs
                .into_iter()
                .flat_map(|o| [o.metrics_out.as_deref(), o.trace_out.as_deref()]);
            for path in [cli.out(), cli.stats_out()]
                .into_iter()
                .chain(obs_paths)
                .flatten()
            {
                let probe = std::fs::OpenOptions::new()
                    .append(true)
                    .create(true)
                    .open(path);
                if let Err(err) = probe {
                    eprintln!("error: cannot write `{path}`: {err}");
                    return ExitCode::FAILURE;
                }
            }
            let artifacts = run_full(&cli);
            match cli.out() {
                None => print!("{}", artifacts.document),
                Some(path) => {
                    if let Err(err) = std::fs::write(path, &artifacts.document) {
                        eprintln!("error: cannot write `{path}`: {err}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!("wrote {path}");
                }
            }
            let side_channels = artifacts
                .stats
                .map(|s| (s.path, s.json))
                .into_iter()
                .chain(artifacts.metrics.map(|a| (a.path, a.contents)))
                .chain(artifacts.trace.map(|a| (a.path, a.contents)));
            for (path, contents) in side_channels {
                if let Err(err) = std::fs::write(&path, &contents) {
                    eprintln!("error: cannot write `{path}`: {err}");
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote {path}");
            }
            ExitCode::SUCCESS
        }
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

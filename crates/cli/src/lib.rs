//! Argument parsing and rendering for `ethpos-cli`, split out of the
//! binary so the logic is unit-testable.
//!
//! The CLI regenerates paper experiments through
//! [`ethpos_core::experiments::run_experiment`]: each positional argument
//! is an experiment id (`fig2` … `table3`) or `all`, and `--format`
//! selects rendered text (default) or JSON. JSON output is always a
//! single document: one object per selected experiment, wrapped in an
//! array when more than one experiment is selected.

#![warn(missing_docs)]

use ethpos_core::experiments::{run_experiment, Experiment};

/// Usage text printed on `--help` and argument errors.
pub const USAGE: &str = "\
ethpos-cli — reproduce the tables and figures of
'Byzantine Attacks Exploiting Penalties in Ethereum PoS' (DSN 2024)

USAGE:
    ethpos-cli [EXPERIMENT]... [--format text|json]
    ethpos-cli --list

ARGS:
    EXPERIMENT    fig2 fig3 fig6 fig7 fig8 fig9 fig10 table1 table2 table3,
                  or `all` for every experiment in paper order

OPTIONS:
    --format <text|json>    Output format [default: text]
    --list                  List experiment ids with their paper reference
    --help                  Show this help";

/// Output format selected with `--format`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Rendered tables and series summaries.
    Text,
    /// The full experiment outputs (every series point) as JSON.
    Json,
}

/// What one invocation should do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cli {
    /// Run the selected experiments and print them.
    Run {
        /// Experiments in the order they will run.
        experiments: Vec<Experiment>,
        /// Selected output format.
        format: Format,
    },
    /// Print the experiment table (`--list`).
    List,
    /// Print [`USAGE`] (`--help`).
    Help,
}

/// A failed parse: the message to print before [`USAGE`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// Unknown id, unknown flag or malformed `--format`.
    Usage(String),
}

/// Parses command-line arguments (without the program name).
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Cli, CliError> {
    let mut experiments = Vec::new();
    let mut format = Format::Text;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(Cli::Help),
            "--list" => return Ok(Cli::List),
            "--format" => {
                let value = iter
                    .next()
                    .ok_or_else(|| CliError::Usage("--format needs a value".into()))?;
                format = parse_format(&value)?;
            }
            other if other.starts_with("--format=") => {
                format = parse_format(&other["--format=".len()..])?;
            }
            other if other.starts_with('-') => {
                return Err(CliError::Usage(format!("unknown option `{other}`")));
            }
            "all" => experiments.extend(Experiment::all()),
            id => {
                let experiment = Experiment::from_id(id).ok_or_else(|| {
                    CliError::Usage(format!(
                        "unknown experiment `{id}` (try --list for the valid ids)"
                    ))
                })?;
                experiments.push(experiment);
            }
        }
    }
    if experiments.is_empty() {
        return Err(CliError::Usage("no experiment selected".into()));
    }
    // Order-preserving dedup: `ethpos-cli all fig2` runs fig2 once.
    let mut seen = Vec::new();
    experiments.retain(|e| {
        let fresh = !seen.contains(e);
        seen.push(*e);
        fresh
    });
    Ok(Cli::Run {
        experiments,
        format,
    })
}

fn parse_format(value: &str) -> Result<Format, CliError> {
    match value {
        "text" => Ok(Format::Text),
        "json" => Ok(Format::Json),
        other => Err(CliError::Usage(format!(
            "unknown format `{other}` (expected `text` or `json`)"
        ))),
    }
}

/// Executes a parsed invocation and returns everything to print.
pub fn run(cli: &Cli) -> String {
    match cli {
        Cli::Help => format!("{USAGE}\n"),
        Cli::List => {
            let mut out = String::from("id      paper reference\n");
            for e in Experiment::all() {
                out.push_str(&format!("{:<7} {}\n", e.id(), e.title()));
            }
            out
        }
        Cli::Run {
            experiments,
            format: Format::Text,
        } => {
            let mut out = String::new();
            for e in experiments {
                out.push_str(&run_experiment(*e).render_text());
                out.push('\n');
            }
            out
        }
        Cli::Run {
            experiments,
            format: Format::Json,
        } => {
            let outputs: Vec<String> = experiments
                .iter()
                .map(|e| run_experiment(*e).to_json())
                .collect();
            match outputs.as_slice() {
                [single] => format!("{single}\n"),
                many => format!("[{}]\n", many.join(",\n")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn every_id_parses_to_its_experiment() {
        for e in Experiment::all() {
            match parse_args(args(&[e.id()])) {
                Ok(Cli::Run {
                    experiments,
                    format,
                }) => {
                    assert_eq!(experiments, vec![e]);
                    assert_eq!(format, Format::Text);
                }
                other => panic!("{}: parsed to {other:?}", e.id()),
            }
        }
    }

    #[test]
    fn all_expands_in_paper_order() {
        let Ok(Cli::Run { experiments, .. }) = parse_args(args(&["all"])) else {
            panic!("`all` did not parse");
        };
        assert_eq!(experiments, Experiment::all().to_vec());
    }

    #[test]
    fn unknown_id_is_a_usage_error() {
        for bad in ["fig42", "table9", "figure2", ""] {
            let err = parse_args(args(&[bad]));
            assert!(
                matches!(err, Err(CliError::Usage(_))),
                "`{bad}` parsed to {err:?}"
            );
        }
    }

    #[test]
    fn format_flag_both_spellings() {
        for argv in [
            args(&["fig2", "--format", "json"]),
            args(&["--format=json", "fig2"]),
        ] {
            let Ok(Cli::Run { format, .. }) = parse_args(argv) else {
                panic!("format flag did not parse");
            };
            assert_eq!(format, Format::Json);
        }
        assert!(matches!(
            parse_args(args(&["fig2", "--format", "yaml"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(args(&["fig2", "--format"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn no_experiment_is_a_usage_error() {
        assert!(matches!(parse_args(args(&[])), Err(CliError::Usage(_))));
    }

    #[test]
    fn duplicate_selection_runs_once_even_when_not_adjacent() {
        let Ok(Cli::Run { experiments, .. }) = parse_args(args(&["all", "fig2"])) else {
            panic!("`all fig2` did not parse");
        };
        assert_eq!(experiments, Experiment::all().to_vec());
    }

    #[test]
    fn json_run_emits_one_valid_document() {
        let cli = parse_args(args(&["table2", "--format", "json"])).unwrap();
        let out = run(&cli);
        let value: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(
            value.get("experiment").and_then(|v| v.as_str()),
            Some("Table2Slashable")
        );
        assert!(value.get("tables").is_some());

        let cli = parse_args(args(&["fig8", "table1", "--format", "json"])).unwrap();
        let value: serde_json::Value = serde_json::from_str(&run(&cli)).unwrap();
        let items = value.as_array().expect("array for multiple experiments");
        assert_eq!(items.len(), 2);
    }
}

//! Argument parsing and rendering for `ethpos-cli`, split out of the
//! binary so the logic is unit-testable.
//!
//! The CLI regenerates paper experiments through
//! [`ethpos_core::experiments::run_experiment_with`]: each positional
//! argument is an experiment id (`fig2` … `table3`) or `all`, and
//! `--format` selects rendered text (default) or JSON. JSON output is
//! always a single document: one object per selected experiment, wrapped
//! in an array when more than one experiment is selected.
//!
//! The `sweep` subcommand runs [`ethpos_core::sweep::SweepSpec`] grids
//! instead of the paper's fixed parameters: `--grid axis=v1,v2,…`
//! replaces an axis (`beta0`, `p0`, `walkers`, `validators`,
//! `semantics`), and `--walkers` / `--epochs` / `--seed` set the scalar
//! Monte-Carlo knobs. `--threads` bounds the worker pool everywhere; by
//! the workspace's determinism model it can change wall-clock time but
//! never a single output byte.
//!
//! `--validators N` switches on the discrete spec-arithmetic
//! cross-checks at registry size `N` (fig2, table2, table3, and the
//! sweep's `t_disc` column), and `--backend dense|cohort` picks the
//! state representation they run on — the cohort-compressed backend
//! makes `N = 1000000` interactive.
//!
//! The `search` subcommand runs the [`ethpos_search`] adversary-strategy
//! search: `--objective` picks the damage metric, `--budget` the number
//! of candidate evaluations, and the frontier report comes back as text
//! or JSON — byte-identical for any `--threads` value, like everything
//! else.
//!
//! The `partition` subcommand runs k-branch partition timelines
//! ([`ethpos_core::partition`]): `--timeline` selects a preset
//! (`three-branch`, `heal-resplit`) or a raw spec
//! (`split@0:0=0.34,0.33,0.33; heal@400:0<-1`, repeatable for a batch),
//! `--strategy`/`--beta0`/`--epochs` override the adversary and sizing,
//! and the batch fans over the worker pool — byte-identical for any
//! `--threads`.
//!
//! The `chaos` subcommand runs randomized campaigns
//! ([`ethpos_core::chaos`]): `--budget` cases are sampled (timeline ×
//! adversary × stake split), every run is checked against safety and
//! liveness oracles derived from the paper's closed forms, and any
//! unexpected violation is minimized by the timeline-aware shrinker
//! before it is reported — byte-identical for any `--threads`.
//!
//! `--out <path>` (any mode) writes the document to a file instead of
//! stdout, so CI jobs collect artifacts without shell redirection.
//! `--regen-golden <dir>` rewrites the golden-snapshot corpus under
//! `<dir>` (normally `tests/golden`, including the chaos replay corpus
//! under `<dir>/chaos`) after an intentional behaviour change.

#![warn(missing_docs)]

use ethpos_core::experiments::{Experiment, McConfig};
use ethpos_core::partition::{self, PartitionSpec, StrategyKind};
use ethpos_core::sweep::SweepSpec;
use ethpos_core::{BackendKind, ChaosSpec, DocumentFormat, JobRequest};
use ethpos_search::{Objective, SearchSpec};

/// Usage text printed on `--help` and argument errors.
pub const USAGE: &str = "\
ethpos-cli — reproduce the tables and figures of
'Byzantine Attacks Exploiting Penalties in Ethereum PoS' (DSN 2024)

USAGE:
    ethpos-cli [EXPERIMENT]... [OPTIONS]
    ethpos-cli sweep [--grid AXIS=V1,V2,...]... [OPTIONS]
    ethpos-cli search [--objective ID] [--budget N] [OPTIONS]
    ethpos-cli partition [--timeline SPEC]... [OPTIONS]
    ethpos-cli chaos [--budget N] [--seed S] [OPTIONS]
    ethpos-cli serve [--addr A] [--cache-dir D] [--threads N]
    ethpos-cli --regen-golden <dir>
    ethpos-cli --list

ARGS:
    EXPERIMENT    fig2 fig3 fig6 fig7 fig8 fig9 fig10 table1 table2 table3
                  frontier partition, or `all` for every experiment in
                  paper order
    sweep         run a parameter grid (β0 × p0 × walkers × semantics)
                  over the §5.3 Monte Carlo and the §5.2 closed forms
    search        search the adversary strategy space (duty-cycle genomes
                  over both branches) for the worst-case damage-vs-cost
                  Pareto frontier, evaluated on the exact discrete
                  protocol
    partition     run k-branch partition timelines (splits, heals, churn)
                  the paper cannot express, at paper-true population
                  sizes on the cohort backend
    chaos         run a randomized campaign (sampled timelines ×
                  adversaries × stake splits) against safety/liveness
                  oracles; unexpected violations are shrunk to minimal
                  reproducers
    serve         run the resident experiment service: a JSON API over
                  every mode above, behind a content-addressed artifact
                  cache (identical requests are answered byte-identically
                  without re-simulating), with GET /metrics and
                  GET /healthz

OPTIONS:
    --format <text|json>    Output format [default: text]
    --out <path>            Write the document to a file instead of stdout
    --stats-out <path>      (search, chaos) also write the run's work
                            counters (prefix-memo checkpoint hits, fork
                            depths, churn count-draws per cohort) as a
                            separate JSON artifact — the main document
                            stays byte-identical
    --metrics-out <path>    (any run mode) enable the metrics registry and
                            write its exposition (chunk-pool throughput,
                            per-stage epoch timings, cohort fragmentation
                            gauges, per-mode work counters) at the end of
                            the run — the main document stays
                            byte-identical
    --metrics-format <prom|json>
                            Exposition format of --metrics-out: Prometheus
                            text or a JSON snapshot [default: prom]
    --trace-out <path>      (any run mode) enable span tracing and write a
                            Chrome trace-event JSON (load it in
                            chrome://tracing or Perfetto) at the end of
                            the run — the main document stays
                            byte-identical
    --threads <N>           Worker threads, 0 = all hardware threads
                            [default: 0]; never changes the output bytes
    --walkers <N>           Monte-Carlo walkers [default: 20000]
    --epochs <N>            Monte-Carlo epoch horizon
                            [default: 8000; sweep: 3000]
    --seed <N>              Monte-Carlo root seed [default: 42; sweep: 11]
    --validators <N>        Run the discrete protocol cross-checks (fig2,
                            table2, table3; sweep: the t_disc column) at
                            registry size N — spec scale (1000000) is
                            interactive on the cohort backend
    --backend <dense|cohort> State backend of the discrete cross-checks
                            [default: cohort]; both produce identical
                            results, dense is the O(n·epochs) reference
    --grid <AXIS=V1,V2,..>  (sweep only, repeatable) replace a sweep axis:
                            beta0, p0, walkers, validators,
                            semantics (paper|spec)
    --objective <ID>        (search) damage metric: conflict, proportion,
                            non-slashable-horizon [default: conflict]
    --budget <N>            (search, chaos) candidate / case count
                            [default: 256]
    --beta0 <X>             (search, partition) initial Byzantine
                            proportion [default: mode-specific]
    --p0 <X>                (search) honest split [default: 0.5]
    --max-period <N>        (search) duty-period bound of the exhaustive
                            grid [default: 3]
    --timeline <SPEC>       (partition, repeatable) a preset name
                            (three-branch, heal-resplit) or a raw spec:
                            `;`-separated split@E:B=W1,W2,…
                            churn@E:B=W1,W2,… heal@E:S<-B1+B2 events
                            [default: both presets]
    --strategy <ID>         (partition) adversary strategy for raw specs:
                            dual-active, semi-active, threshold-seeker,
                            rotate, rotate-dwell [default: rotate-dwell]
    --addr <HOST:PORT>      (serve) listen address [default: 127.0.0.1:4280;
                            port 0 picks a free port]
    --cache-dir <DIR>       (serve) artifact cache directory
                            [default: .ethpos-cache]
    --regen-golden <dir>    Rewrite the golden-snapshot corpus fixtures
                            (the five paper scenarios plus the chaos
                            replay corpus under <dir>/chaos) into <dir>
    --list                  List experiment ids with their paper reference
    --help                  Show this help";

/// Output format selected with `--format`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Rendered tables and series summaries.
    Text,
    /// The full experiment outputs (every series point) as JSON.
    Json,
}

/// Exposition format selected with `--metrics-format`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsFormat {
    /// Prometheus text exposition (`# HELP` / `# TYPE` / samples).
    #[default]
    Prometheus,
    /// The registry's JSON snapshot.
    Json,
}

/// The observability outputs of one invocation — `--metrics-out`,
/// `--metrics-format` and `--trace-out`, valid in every run mode.
/// Recording is **off** unless the corresponding output is requested,
/// and by the workspace's determinism model turning it on never changes
/// a byte of the main document (or of `--stats-out`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ObsOutputs {
    /// `--metrics-out` destination; the metrics registry records iff
    /// this is set.
    pub metrics_out: Option<String>,
    /// `--metrics-format` [default: prom].
    pub metrics_format: MetricsFormat,
    /// `--trace-out` destination; span tracing records iff this is set.
    pub trace_out: Option<String>,
}

impl ObsOutputs {
    /// True when neither output was requested.
    pub fn is_empty(&self) -> bool {
        self.metrics_out.is_none() && self.trace_out.is_none()
    }
}

/// What one invocation should do.
#[derive(Debug, Clone, PartialEq)]
pub enum Cli {
    /// Run the selected experiments and print them.
    Run {
        /// Experiments in the order they will run.
        experiments: Vec<Experiment>,
        /// Selected output format.
        format: Format,
        /// Monte-Carlo sizing/seeding/threading for the simulation-backed
        /// cross-checks (currently: the fig10 walker Monte Carlo).
        mc: McConfig,
        /// `--out` destination (stdout when absent).
        out: Option<String>,
        /// Metrics/trace outputs (`--metrics-out`, `--trace-out`).
        obs: ObsOutputs,
    },
    /// Run a parameter sweep (`sweep`).
    Sweep {
        /// The grid to evaluate.
        spec: SweepSpec,
        /// Selected output format.
        format: Format,
        /// `--out` destination (stdout when absent).
        out: Option<String>,
        /// Metrics/trace outputs (`--metrics-out`, `--trace-out`).
        obs: ObsOutputs,
    },
    /// Run an adversary strategy search (`search`).
    Search {
        /// The search to run.
        spec: SearchSpec,
        /// Selected output format.
        format: Format,
        /// `--out` destination (stdout when absent).
        out: Option<String>,
        /// `--stats-out` destination for the prefix-memo work counters
        /// (no artifact when absent; never part of the frontier
        /// document).
        stats_out: Option<String>,
        /// Metrics/trace outputs (`--metrics-out`, `--trace-out`).
        obs: ObsOutputs,
    },
    /// Run partition timelines (`partition`).
    Partition {
        /// The scenario batch to run.
        spec: PartitionSpec,
        /// Selected output format.
        format: Format,
        /// `--out` destination (stdout when absent).
        out: Option<String>,
        /// Metrics/trace outputs (`--metrics-out`, `--trace-out`).
        obs: ObsOutputs,
    },
    /// Run a randomized chaos campaign (`chaos`).
    Chaos {
        /// The campaign to run.
        spec: ChaosSpec,
        /// Selected output format.
        format: Format,
        /// `--out` destination (stdout when absent).
        out: Option<String>,
        /// `--stats-out` destination for the campaign's fork and
        /// churn-draw counters (no artifact when absent; never part of
        /// the report document).
        stats_out: Option<String>,
        /// Metrics/trace outputs (`--metrics-out`, `--trace-out`).
        obs: ObsOutputs,
    },
    /// Run the resident experiment service (`serve`).
    Serve {
        /// `--addr` listen address (`host:port`; port 0 = ephemeral).
        addr: String,
        /// `--cache-dir` artifact cache directory.
        cache_dir: String,
        /// `--threads` worker budget handed to every job (0 = all
        /// cores).
        threads: usize,
    },
    /// Rewrite the golden-snapshot corpus (`--regen-golden <dir>`).
    RegenGolden {
        /// Destination directory (normally `tests/golden`).
        dir: String,
    },
    /// Print the experiment table (`--list`).
    List,
    /// Print [`USAGE`] (`--help`).
    Help,
}

impl Cli {
    /// The `--out` destination, if one was given.
    pub fn out(&self) -> Option<&str> {
        match self {
            Cli::Run { out, .. }
            | Cli::Sweep { out, .. }
            | Cli::Search { out, .. }
            | Cli::Partition { out, .. }
            | Cli::Chaos { out, .. } => out.as_deref(),
            Cli::Serve { .. } | Cli::RegenGolden { .. } | Cli::List | Cli::Help => None,
        }
    }

    /// The `--stats-out` destination, if one was given (search and
    /// chaos only).
    pub fn stats_out(&self) -> Option<&str> {
        match self {
            Cli::Search { stats_out, .. } | Cli::Chaos { stats_out, .. } => stats_out.as_deref(),
            _ => None,
        }
    }

    /// The observability outputs, if this is a run mode.
    pub fn obs(&self) -> Option<&ObsOutputs> {
        match self {
            Cli::Run { obs, .. }
            | Cli::Sweep { obs, .. }
            | Cli::Search { obs, .. }
            | Cli::Partition { obs, .. }
            | Cli::Chaos { obs, .. } => Some(obs),
            Cli::Serve { .. } | Cli::RegenGolden { .. } | Cli::List | Cli::Help => None,
        }
    }
}

/// A failed parse: the message to print before [`USAGE`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// Unknown id, unknown flag or malformed option value.
    Usage(String),
}

/// Flag values accumulated by the first parsing pass, before the mode
/// (experiments vs sweep vs search) is known.
#[derive(Debug, Default)]
struct RawFlags {
    format: Option<Format>,
    threads: Option<usize>,
    walkers: Option<usize>,
    epochs: Option<u64>,
    seed: Option<u64>,
    validators: Option<usize>,
    backend: Option<BackendKind>,
    grids: Vec<String>,
    objective: Option<Objective>,
    budget: Option<usize>,
    beta0: Option<f64>,
    p0: Option<f64>,
    max_period: Option<u8>,
    timelines: Vec<String>,
    strategy: Option<StrategyKind>,
    regen_golden: Option<String>,
    addr: Option<String>,
    cache_dir: Option<String>,
    out: Option<String>,
    stats_out: Option<String>,
    metrics_out: Option<String>,
    metrics_format: Option<MetricsFormat>,
    trace_out: Option<String>,
}

impl RawFlags {
    /// Assembles the `--metrics-out` / `--metrics-format` /
    /// `--trace-out` trio, rejecting a format with nowhere to go.
    fn obs_outputs(&self) -> Result<ObsOutputs, CliError> {
        if self.metrics_format.is_some() && self.metrics_out.is_none() {
            return Err(CliError::Usage(
                "--metrics-format needs --metrics-out <path>".into(),
            ));
        }
        Ok(ObsOutputs {
            metrics_out: self.metrics_out.clone(),
            metrics_format: self.metrics_format.unwrap_or_default(),
            trace_out: self.trace_out.clone(),
        })
    }
}

/// Parses command-line arguments (without the program name).
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Cli, CliError> {
    let mut experiments = Vec::new();
    let mut sweep = false;
    let mut search = false;
    let mut partition = false;
    let mut chaos = false;
    let mut serve = false;
    let mut flags = RawFlags::default();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        // `--opt value` and `--opt=value` are both accepted.
        let mut flag_value = |name: &str| -> Result<Option<String>, CliError> {
            if arg == name {
                return iter
                    .next()
                    .map(Some)
                    .ok_or_else(|| CliError::Usage(format!("{name} needs a value")));
            }
            if let Some(rest) = arg.strip_prefix(&format!("{name}=")) {
                return Ok(Some(rest.to_string()));
            }
            Ok(None)
        };
        if let Some(value) = flag_value("--format")? {
            flags.format = Some(parse_format(&value)?);
        } else if let Some(value) = flag_value("--threads")? {
            flags.threads = Some(parse_count("--threads", &value, true)?);
        } else if let Some(value) = flag_value("--walkers")? {
            flags.walkers = Some(parse_count("--walkers", &value, false)?);
        } else if let Some(value) = flag_value("--epochs")? {
            flags.epochs = Some(parse_count("--epochs", &value, false)? as u64);
        } else if let Some(value) = flag_value("--seed")? {
            flags.seed = Some(
                value
                    .parse::<u64>()
                    .map_err(|_| CliError::Usage(format!("--seed `{value}` is not a u64")))?,
            );
        } else if let Some(value) = flag_value("--validators")? {
            flags.validators = Some(parse_count("--validators", &value, false)?);
        } else if let Some(value) = flag_value("--backend")? {
            flags.backend = Some(BackendKind::from_id(&value).ok_or_else(|| {
                CliError::Usage(format!(
                    "unknown backend `{value}` (expected `dense` or `cohort`)"
                ))
            })?);
        } else if let Some(value) = flag_value("--grid")? {
            flags.grids.push(value);
        } else if let Some(value) = flag_value("--objective")? {
            flags.objective = Some(Objective::from_id(&value).ok_or_else(|| {
                CliError::Usage(format!(
                    "unknown objective `{value}` (expected conflict, proportion \
                     or non-slashable-horizon)"
                ))
            })?);
        } else if let Some(value) = flag_value("--budget")? {
            flags.budget = Some(parse_count("--budget", &value, false)?);
        } else if let Some(value) = flag_value("--beta0")? {
            flags.beta0 = Some(parse_unit("--beta0", &value)?);
        } else if let Some(value) = flag_value("--p0")? {
            flags.p0 = Some(parse_unit("--p0", &value)?);
        } else if let Some(value) = flag_value("--max-period")? {
            let n = parse_count("--max-period", &value, false)?;
            if n > 8 {
                return Err(CliError::Usage(format!(
                    "--max-period `{n}` is too fine (the exhaustive grid \
                     grows combinatorially; use ≤ 8)"
                )));
            }
            flags.max_period = Some(n as u8);
        } else if let Some(value) = flag_value("--timeline")? {
            flags.timelines.push(value);
        } else if let Some(value) = flag_value("--strategy")? {
            flags.strategy = Some(StrategyKind::from_id(&value).ok_or_else(|| {
                CliError::Usage(format!(
                    "unknown strategy `{value}` (expected dual-active, semi-active, \
                     threshold-seeker, rotate or rotate-dwell)"
                ))
            })?);
        } else if let Some(value) = flag_value("--regen-golden")? {
            flags.regen_golden = Some(value);
        } else if let Some(value) = flag_value("--addr")? {
            flags.addr = Some(value);
        } else if let Some(value) = flag_value("--cache-dir")? {
            flags.cache_dir = Some(value);
        } else if let Some(value) = flag_value("--out")? {
            flags.out = Some(value);
        } else if let Some(value) = flag_value("--stats-out")? {
            flags.stats_out = Some(value);
        } else if let Some(value) = flag_value("--metrics-out")? {
            flags.metrics_out = Some(value);
        } else if let Some(value) = flag_value("--metrics-format")? {
            flags.metrics_format = Some(parse_metrics_format(&value)?);
        } else if let Some(value) = flag_value("--trace-out")? {
            flags.trace_out = Some(value);
        } else {
            match arg.as_str() {
                "--help" | "-h" => return Ok(Cli::Help),
                "--list" => return Ok(Cli::List),
                other if other.starts_with('-') => {
                    return Err(CliError::Usage(format!("unknown option `{other}`")));
                }
                "sweep" => sweep = true,
                "search" => search = true,
                "partition" => partition = true,
                "chaos" => chaos = true,
                "serve" => serve = true,
                "all" => experiments.extend(Experiment::all()),
                id => {
                    let experiment = Experiment::from_id(id).ok_or_else(|| {
                        CliError::Usage(format!(
                            "unknown experiment `{id}` (try --list for the valid ids)"
                        ))
                    })?;
                    experiments.push(experiment);
                }
            }
        }
    }
    if [sweep, search, partition, chaos, serve]
        .iter()
        .filter(|&&m| m)
        .count()
        > 1
    {
        return Err(CliError::Usage(
            "`sweep`, `search`, `partition`, `chaos` and `serve` are different \
             subcommands"
                .into(),
        ));
    }
    if !serve && (flags.addr.is_some() || flags.cache_dir.is_some()) {
        return Err(CliError::Usage(
            "--addr and --cache-dir are only valid with the `serve` subcommand".into(),
        ));
    }
    if let Some(dir) = flags.regen_golden {
        if sweep || search || partition || chaos || serve || !experiments.is_empty() {
            return Err(CliError::Usage(
                "--regen-golden stands alone (it rewrites the fixture corpus)".into(),
            ));
        }
        return Ok(Cli::RegenGolden { dir });
    }
    if serve {
        return build_serve(&experiments, flags);
    }
    if sweep {
        return build_sweep(&experiments, flags);
    }
    if search {
        return build_search(&experiments, flags);
    }
    if partition {
        return build_partition(&experiments, flags);
    }
    if chaos {
        return build_chaos(&experiments, flags);
    }
    build_run(experiments, flags)
}

fn build_partition(experiments: &[Experiment], flags: RawFlags) -> Result<Cli, CliError> {
    if let Some(extra) = experiments.first() {
        return Err(CliError::Usage(format!(
            "`partition` cannot be combined with experiment ids (got `{}`)",
            extra.id()
        )));
    }
    if let Some(grid) = flags.grids.first() {
        return Err(CliError::Usage(format!(
            "--grid {grid} is only valid with the `sweep` subcommand"
        )));
    }
    if flags.walkers.is_some() {
        return Err(CliError::Usage(
            "--walkers is a Monte-Carlo knob; `partition` runs one exact \
             simulation per timeline"
                .into(),
        ));
    }
    for (name, valid_with, set) in [
        ("--objective", "`search`", flags.objective.is_some()),
        ("--budget", "`search` and `chaos`", flags.budget.is_some()),
        ("--max-period", "`search`", flags.max_period.is_some()),
        ("--p0", "`search`", flags.p0.is_some()),
    ] {
        if set {
            return Err(CliError::Usage(format!(
                "{name} is only valid with the {valid_with} subcommand(s) \
                 (partition splits are set by the timeline weights)"
            )));
        }
    }
    reject_stats_out(&flags)?;
    let strategy = flags.strategy.unwrap_or(StrategyKind::RotateDwell);
    // Raw-timeline defaults live in core so the request API resolves
    // identical scenarios (identical bytes, identical cache addresses).
    let beta0 = flags.beta0.unwrap_or(partition::RAW_TIMELINE_BETA0);
    let epochs = flags.epochs.unwrap_or(partition::RAW_TIMELINE_EPOCHS);
    let mut scenarios = if flags.timelines.is_empty() {
        partition::preset_scenarios()
    } else {
        flags
            .timelines
            .iter()
            .map(|arg| {
                partition::resolve_scenario(arg, strategy, beta0, epochs)
                    .map_err(|err| CliError::Usage(err.to_string()))
            })
            .collect::<Result<Vec<_>, CliError>>()?
    };
    // Explicit flags override preset-carried knobs too, so
    // `partition --timeline three-branch --beta0 0.3` means what it says.
    for scenario in &mut scenarios {
        if let Some(beta0) = flags.beta0 {
            scenario.beta0 = beta0;
        }
        if let Some(epochs) = flags.epochs {
            scenario.epochs = epochs;
        }
        if let Some(strategy) = flags.strategy {
            scenario.strategy = strategy;
        }
        // After overrides: a strategy that cannot observe this timeline
        // is a usage error, not a mid-run panic.
        partition::validate_scenario(scenario).map_err(|err| CliError::Usage(err.to_string()))?;
    }
    let defaults = PartitionSpec::default();
    let obs = flags.obs_outputs()?;
    Ok(Cli::Partition {
        spec: PartitionSpec {
            scenarios,
            n: flags.validators.unwrap_or(defaults.n),
            backend: flags.backend.unwrap_or(defaults.backend),
            seed: flags.seed.unwrap_or(defaults.seed),
            threads: flags.threads.unwrap_or(defaults.threads),
        },
        format: flags.format.unwrap_or(Format::Text),
        out: flags.out,
        obs,
    })
}

fn build_chaos(experiments: &[Experiment], flags: RawFlags) -> Result<Cli, CliError> {
    if let Some(extra) = experiments.first() {
        return Err(CliError::Usage(format!(
            "`chaos` cannot be combined with experiment ids (got `{}`)",
            extra.id()
        )));
    }
    if let Some(grid) = flags.grids.first() {
        return Err(CliError::Usage(format!(
            "--grid {grid} is only valid with the `sweep` subcommand"
        )));
    }
    if flags.walkers.is_some() {
        return Err(CliError::Usage(
            "--walkers is a Monte-Carlo knob; `chaos` sizes itself with --budget".into(),
        ));
    }
    // The campaign samples its own stake splits and adversaries — the
    // search/partition shape knobs have nothing to bind to.
    for (name, set) in [
        ("--objective", flags.objective.is_some()),
        ("--max-period", flags.max_period.is_some()),
        ("--p0", flags.p0.is_some()),
        ("--beta0", flags.beta0.is_some()),
    ] {
        if set {
            return Err(CliError::Usage(format!(
                "{name} has no meaning under `chaos` (the campaign samples \
                 stake splits and adversaries from --seed)"
            )));
        }
    }
    reject_partition_flags(&flags)?;
    let mut spec = ChaosSpec::default();
    if let Some(budget) = flags.budget {
        spec.budget = budget as u64;
    }
    if let Some(seed) = flags.seed {
        spec.seed = seed;
    }
    if let Some(epochs) = flags.epochs {
        spec.max_epochs = epochs;
    }
    if let Some(n) = flags.validators {
        spec.n = n;
    }
    if let Some(backend) = flags.backend {
        spec.backend = backend;
    }
    if let Some(threads) = flags.threads {
        spec.threads = threads;
    }
    let obs = flags.obs_outputs()?;
    Ok(Cli::Chaos {
        spec,
        format: flags.format.unwrap_or(Format::Text),
        out: flags.out,
        stats_out: flags.stats_out,
        obs,
    })
}

fn build_serve(experiments: &[Experiment], flags: RawFlags) -> Result<Cli, CliError> {
    if let Some(extra) = experiments.first() {
        return Err(CliError::Usage(format!(
            "`serve` cannot be combined with experiment ids (got `{}`) — \
             submit them to POST /v1/jobs instead",
            extra.id()
        )));
    }
    // Every run-shaping and output flag belongs to a *request*, not to
    // the service: the server takes them per-job from the JSON body and
    // serves documents over HTTP, so a flag here could only be ignored.
    for (name, set) in [
        ("--format", flags.format.is_some()),
        ("--walkers", flags.walkers.is_some()),
        ("--epochs", flags.epochs.is_some()),
        ("--seed", flags.seed.is_some()),
        ("--validators", flags.validators.is_some()),
        ("--backend", flags.backend.is_some()),
        ("--grid", !flags.grids.is_empty()),
        ("--objective", flags.objective.is_some()),
        ("--budget", flags.budget.is_some()),
        ("--beta0", flags.beta0.is_some()),
        ("--p0", flags.p0.is_some()),
        ("--max-period", flags.max_period.is_some()),
        ("--timeline", !flags.timelines.is_empty()),
        ("--strategy", flags.strategy.is_some()),
        ("--out", flags.out.is_some()),
        ("--stats-out", flags.stats_out.is_some()),
        ("--metrics-out", flags.metrics_out.is_some()),
        ("--metrics-format", flags.metrics_format.is_some()),
        ("--trace-out", flags.trace_out.is_some()),
    ] {
        if set {
            return Err(CliError::Usage(format!(
                "{name} is a per-request knob; pass it in the JSON body of \
                 POST /v1/jobs (`serve` only takes --addr, --cache-dir and \
                 --threads)"
            )));
        }
    }
    let defaults = ethpos_server::ServerConfig::default();
    Ok(Cli::Serve {
        addr: flags.addr.unwrap_or(defaults.addr),
        cache_dir: flags.cache_dir.unwrap_or(defaults.cache_dir),
        threads: flags.threads.unwrap_or(defaults.threads),
    })
}

/// Rejects the search-only flags (and the search/partition-shared
/// `--beta0`) in plain-run and `sweep` modes (`hint` is appended to the
/// error when the mode has an equivalent of its own).
fn reject_search_flags(flags: &RawFlags, hint: &str) -> Result<(), CliError> {
    for (name, valid_with, set) in [
        ("--objective", "`search`", flags.objective.is_some()),
        ("--budget", "`search` and `chaos`", flags.budget.is_some()),
        ("--beta0", "`search` and `partition`", flags.beta0.is_some()),
        ("--p0", "`search`", flags.p0.is_some()),
        ("--max-period", "`search`", flags.max_period.is_some()),
    ] {
        if set {
            return Err(CliError::Usage(format!(
                "{name} is only valid with the {valid_with} subcommand(s){hint}"
            )));
        }
    }
    Ok(())
}

/// Rejects `--stats-out` in the modes that produce no work-counter
/// artifact.
fn reject_stats_out(flags: &RawFlags) -> Result<(), CliError> {
    if flags.stats_out.is_some() {
        return Err(CliError::Usage(
            "--stats-out is only valid with the `search` and `chaos` subcommands".into(),
        ));
    }
    Ok(())
}

/// Rejects the partition-only flags in non-`partition` modes.
fn reject_partition_flags(flags: &RawFlags) -> Result<(), CliError> {
    for (name, set) in [
        ("--timeline", !flags.timelines.is_empty()),
        ("--strategy", flags.strategy.is_some()),
    ] {
        if set {
            return Err(CliError::Usage(format!(
                "{name} is only valid with the `partition` subcommand"
            )));
        }
    }
    Ok(())
}

fn build_run(mut experiments: Vec<Experiment>, flags: RawFlags) -> Result<Cli, CliError> {
    if let Some(grid) = flags.grids.first() {
        return Err(CliError::Usage(format!(
            "--grid {grid} is only valid with the `sweep` subcommand"
        )));
    }
    reject_search_flags(&flags, "")?;
    reject_partition_flags(&flags)?;
    reject_stats_out(&flags)?;
    if experiments.is_empty() {
        return Err(CliError::Usage("no experiment selected".into()));
    }
    // Order-preserving dedup: `ethpos-cli all fig2` runs fig2 once.
    let mut seen = Vec::new();
    experiments.retain(|e| {
        let fresh = !seen.contains(e);
        seen.push(*e);
        fresh
    });
    let defaults = McConfig::default();
    let obs = flags.obs_outputs()?;
    Ok(Cli::Run {
        experiments,
        format: flags.format.unwrap_or(Format::Text),
        mc: McConfig {
            threads: flags.threads.unwrap_or(defaults.threads),
            walkers: flags.walkers.unwrap_or(defaults.walkers),
            epochs: flags.epochs.unwrap_or(defaults.epochs),
            seed: flags.seed.unwrap_or(defaults.seed),
            validators: flags.validators,
            backend: flags.backend.unwrap_or(defaults.backend),
        },
        out: flags.out,
        obs,
    })
}

fn build_search(experiments: &[Experiment], flags: RawFlags) -> Result<Cli, CliError> {
    if let Some(extra) = experiments.first() {
        return Err(CliError::Usage(format!(
            "`search` cannot be combined with experiment ids (got `{}`)",
            extra.id()
        )));
    }
    if let Some(grid) = flags.grids.first() {
        return Err(CliError::Usage(format!(
            "--grid {grid} is only valid with the `sweep` subcommand"
        )));
    }
    if flags.walkers.is_some() {
        return Err(CliError::Usage(
            "--walkers is a Monte-Carlo knob; `search` sizes itself with --budget".into(),
        ));
    }
    reject_partition_flags(&flags)?;
    let mut spec = SearchSpec::new(flags.objective.unwrap_or(Objective::Conflict));
    if let Some(beta0) = flags.beta0 {
        spec.beta0 = beta0;
    }
    if let Some(p0) = flags.p0 {
        spec.p0 = p0;
    }
    if let Some(n) = flags.validators {
        spec.n = n;
    }
    if let Some(backend) = flags.backend {
        spec.backend = backend;
    }
    if let Some(epochs) = flags.epochs {
        spec.epochs = epochs;
    }
    if let Some(budget) = flags.budget {
        spec.budget = budget;
    }
    if let Some(max_period) = flags.max_period {
        spec.max_period = max_period;
    }
    if let Some(seed) = flags.seed {
        spec.seed = seed;
    }
    if let Some(threads) = flags.threads {
        spec.threads = threads;
    }
    let obs = flags.obs_outputs()?;
    Ok(Cli::Search {
        spec,
        format: flags.format.unwrap_or(Format::Text),
        out: flags.out,
        stats_out: flags.stats_out,
        obs,
    })
}

fn build_sweep(experiments: &[Experiment], flags: RawFlags) -> Result<Cli, CliError> {
    if let Some(extra) = experiments.first() {
        return Err(CliError::Usage(format!(
            "`sweep` cannot be combined with experiment ids (got `{}`)",
            extra.id()
        )));
    }
    reject_search_flags(&flags, " (sweep replaces axes with --grid axis=…)")?;
    reject_partition_flags(&flags)?;
    reject_stats_out(&flags)?;
    let mut spec = SweepSpec::default();
    if let Some(threads) = flags.threads {
        spec.threads = threads;
    }
    if let Some(walkers) = flags.walkers {
        spec.walkers = vec![walkers];
    }
    if let Some(epochs) = flags.epochs {
        spec.epochs = epochs;
    }
    if let Some(seed) = flags.seed {
        spec.seed = seed;
    }
    if let Some(validators) = flags.validators {
        spec.validators = vec![validators];
    }
    if let Some(backend) = flags.backend {
        spec.backend = backend;
    }
    // Grid directives come last so `--grid walkers=…` wins over
    // `--walkers` regardless of flag order.
    for grid in &flags.grids {
        spec.apply_grid(grid).map_err(CliError::Usage)?;
    }
    let obs = flags.obs_outputs()?;
    Ok(Cli::Sweep {
        spec,
        format: flags.format.unwrap_or(Format::Text),
        out: flags.out,
        obs,
    })
}

fn parse_format(value: &str) -> Result<Format, CliError> {
    match value {
        "text" => Ok(Format::Text),
        "json" => Ok(Format::Json),
        other => Err(CliError::Usage(format!(
            "unknown format `{other}` (expected `text` or `json`)"
        ))),
    }
}

fn parse_metrics_format(value: &str) -> Result<MetricsFormat, CliError> {
    match value {
        "prom" => Ok(MetricsFormat::Prometheus),
        "json" => Ok(MetricsFormat::Json),
        other => Err(CliError::Usage(format!(
            "unknown metrics format `{other}` (expected `prom` or `json`)"
        ))),
    }
}

fn parse_unit(name: &str, value: &str) -> Result<f64, CliError> {
    value
        .parse::<f64>()
        .ok()
        .filter(|x| *x > 0.0 && *x < 1.0)
        .ok_or_else(|| CliError::Usage(format!("{name} `{value}` is not a float in (0, 1)")))
}

fn parse_count(name: &str, value: &str, zero_ok: bool) -> Result<usize, CliError> {
    value
        .parse::<usize>()
        .ok()
        .filter(|&n| zero_ok || n > 0)
        .ok_or_else(|| {
            CliError::Usage(format!(
                "{name} `{value}` is not a {} integer",
                if zero_ok { "non-negative" } else { "positive" }
            ))
        })
}

/// The `--stats-out` artifact of one invocation: destination path and
/// rendered JSON contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsArtifact {
    /// Where `--stats-out` asked the artifact to go.
    pub path: String,
    /// The work counters as pretty-printed JSON (newline-terminated).
    pub json: String,
}

/// A generic side-channel artifact: destination path and rendered
/// contents (Prometheus text, JSON snapshot or Chrome trace JSON).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifact {
    /// Destination path.
    pub path: String,
    /// Rendered contents (newline-terminated).
    pub contents: String,
}

/// Everything one invocation produced: the main document plus the
/// optional side-channel artifacts. The document bytes never depend on
/// which artifacts were requested.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunArtifacts {
    /// The main document ([`run`]'s return value).
    pub document: String,
    /// The `--stats-out` artifact (search and chaos).
    pub stats: Option<StatsArtifact>,
    /// The `--metrics-out` artifact (any run mode).
    pub metrics: Option<Artifact>,
    /// The `--trace-out` artifact (any run mode).
    pub trace: Option<Artifact>,
}

/// Executes a parsed invocation and returns everything to print.
pub fn run(cli: &Cli) -> String {
    run_with_stats(cli).0
}

/// [`run_with_stats`] plus the `--metrics-out` / `--trace-out`
/// artifacts. Recording is enabled (process-globally) before the run
/// iff the corresponding output was requested, and the registry /
/// trace ring are rendered once the run is done. Instrumentation is
/// observation-only: the document and `--stats-out` bytes are identical
/// with and without it.
pub fn run_full(cli: &Cli) -> RunArtifacts {
    let obs = cli.obs().cloned().unwrap_or_default();
    if obs.metrics_out.is_some() {
        ethpos_obs::set_metrics_enabled(true);
    }
    if obs.trace_out.is_some() {
        ethpos_obs::set_trace_enabled(true);
    }
    let (document, stats) = run_with_stats(cli);
    let metrics = obs.metrics_out.map(|path| Artifact {
        path,
        contents: match obs.metrics_format {
            MetricsFormat::Prometheus => ethpos_obs::global().render_prometheus(),
            MetricsFormat::Json => ethpos_obs::global().render_json(),
        },
    });
    let trace = obs.trace_out.map(|path| Artifact {
        path,
        contents: ethpos_obs::tracer().export_chrome_json(),
    });
    RunArtifacts {
        document,
        stats,
        metrics,
        trace,
    }
}

/// [`run`] plus the `--stats-out` artifact when the invocation asked
/// for one (search and chaos). The main document is byte-identical
/// with and without `--stats-out` — the counters never leak into it.
pub fn run_with_stats(cli: &Cli) -> (String, Option<StatsArtifact>) {
    let Some(request) = job_request(cli) else {
        return (run_plain(cli), None);
    };
    let output = request.execute();
    // Partition jobs carry stats too, but the CLI rejects --stats-out
    // for them (`reject_stats_out`), so only search and chaos can have a
    // destination here.
    let stats = match (cli.stats_out(), output.stats) {
        (Some(path), Some(json)) => Some(StatsArtifact {
            path: path.to_string(),
            json,
        }),
        _ => None,
    };
    (output.document, stats)
}

/// The [`JobRequest`] equivalent of a run-mode invocation (`None` for
/// the non-run modes). This is the single execution path shared with
/// `ethpos-server`: a command line and the equivalent API request
/// canonicalize to the same request and produce byte-identical
/// documents.
pub fn job_request(cli: &Cli) -> Option<JobRequest> {
    let doc = |format: Format| match format {
        Format::Text => DocumentFormat::Text,
        Format::Json => DocumentFormat::Json,
    };
    match cli {
        Cli::Run {
            experiments,
            format,
            mc,
            ..
        } => Some(JobRequest::Run {
            experiments: experiments.clone(),
            mc: *mc,
            format: doc(*format),
        }),
        Cli::Sweep { spec, format, .. } => Some(JobRequest::Sweep {
            spec: spec.clone(),
            format: doc(*format),
        }),
        Cli::Search { spec, format, .. } => Some(JobRequest::Search {
            spec: spec.clone(),
            format: doc(*format),
        }),
        Cli::Partition { spec, format, .. } => Some(JobRequest::Partition {
            spec: spec.clone(),
            format: doc(*format),
        }),
        Cli::Chaos { spec, format, .. } => Some(JobRequest::Chaos {
            spec: spec.clone(),
            format: doc(*format),
        }),
        Cli::Serve { .. } | Cli::RegenGolden { .. } | Cli::List | Cli::Help => None,
    }
}

/// The non-run modes of [`run`].
fn run_plain(cli: &Cli) -> String {
    match cli {
        Cli::Help => format!("{USAGE}\n"),
        Cli::List => {
            let mut out = String::from("id       paper reference\n");
            for e in Experiment::all() {
                out.push_str(&format!("{:<8} {}\n", e.id(), e.title()));
            }
            out
        }
        Cli::Serve { addr, .. } => {
            // The binary routes this variant through `ethpos_server`; this
            // arm keeps `run` total for library callers.
            format!("serve is a resident mode: run the `ethpos-cli` binary ({addr})\n")
        }
        Cli::RegenGolden { dir } => {
            // The binary routes this variant through [`regen_golden`] so
            // a failure exits non-zero; this arm keeps `run` total for
            // library callers.
            regen_golden(dir).unwrap_or_else(|err| format!("error: {err}\n"))
        }
        Cli::Run { .. }
        | Cli::Sweep { .. }
        | Cli::Search { .. }
        | Cli::Partition { .. }
        | Cli::Chaos { .. } => {
            unreachable!("run modes are handled by `run_with_stats`")
        }
    }
}

/// Rewrites the golden-snapshot corpus into `dir` and returns the
/// confirmation message (one line per fixture).
///
/// # Errors
///
/// Returns a rendered error when the corpus cannot be written — the
/// binary prints it to stderr and exits non-zero, so a scripted
/// `--regen-golden && git diff` cannot silently keep stale fixtures.
pub fn regen_golden(dir: &str) -> Result<String, String> {
    match ethpos_core::golden::regenerate(std::path::Path::new(dir)) {
        Ok(written) => Ok(written
            .into_iter()
            .map(|file| format!("regenerated {dir}/{file}\n"))
            .collect()),
        Err(err) => Err(format!("cannot write the golden corpus to `{dir}`: {err}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethpos_core::stake_model::PenaltySemantics;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn every_id_parses_to_its_experiment() {
        for e in Experiment::all() {
            if e == Experiment::PartitionTimelines {
                // The word `partition` is the full-size subcommand; the
                // smoke experiment still runs through `all`.
                assert!(matches!(
                    parse_args(args(&["partition"])),
                    Ok(Cli::Partition { .. })
                ));
                continue;
            }
            if e == Experiment::ChaosCampaign {
                // Same shadowing for `chaos`.
                assert!(matches!(
                    parse_args(args(&["chaos"])),
                    Ok(Cli::Chaos { .. })
                ));
                continue;
            }
            match parse_args(args(&[e.id()])) {
                Ok(Cli::Run {
                    experiments,
                    format,
                    mc,
                    out,
                    obs,
                }) => {
                    assert_eq!(experiments, vec![e]);
                    assert_eq!(out, None);
                    assert_eq!(format, Format::Text);
                    assert_eq!(mc, McConfig::default());
                    assert!(obs.is_empty());
                }
                other => panic!("{}: parsed to {other:?}", e.id()),
            }
        }
    }

    #[test]
    fn all_expands_in_paper_order() {
        let Ok(Cli::Run { experiments, .. }) = parse_args(args(&["all"])) else {
            panic!("`all` did not parse");
        };
        assert_eq!(experiments, Experiment::all().to_vec());
    }

    #[test]
    fn unknown_id_is_a_usage_error() {
        for bad in ["fig42", "table9", "figure2", ""] {
            let err = parse_args(args(&[bad]));
            assert!(
                matches!(err, Err(CliError::Usage(_))),
                "`{bad}` parsed to {err:?}"
            );
        }
    }

    #[test]
    fn format_flag_both_spellings() {
        for argv in [
            args(&["fig2", "--format", "json"]),
            args(&["--format=json", "fig2"]),
        ] {
            let Ok(Cli::Run { format, .. }) = parse_args(argv) else {
                panic!("format flag did not parse");
            };
            assert_eq!(format, Format::Json);
        }
        assert!(matches!(
            parse_args(args(&["fig2", "--format", "yaml"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(args(&["fig2", "--format"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn no_experiment_is_a_usage_error() {
        assert!(matches!(parse_args(args(&[])), Err(CliError::Usage(_))));
    }

    #[test]
    fn duplicate_selection_runs_once_even_when_not_adjacent() {
        let Ok(Cli::Run { experiments, .. }) = parse_args(args(&["all", "fig2"])) else {
            panic!("`all fig2` did not parse");
        };
        assert_eq!(experiments, Experiment::all().to_vec());
    }

    #[test]
    fn mc_knobs_reach_the_config() {
        let cli = parse_args(args(&[
            "fig10",
            "--threads=4",
            "--walkers",
            "1000",
            "--epochs=500",
            "--seed",
            "7",
        ]))
        .unwrap();
        let Cli::Run { mc, .. } = cli else {
            panic!("not a run: {cli:?}");
        };
        assert_eq!(
            mc,
            McConfig {
                threads: 4,
                walkers: 1000,
                epochs: 500,
                seed: 7,
                ..McConfig::default()
            }
        );
        // zero walkers / epochs are rejected, zero threads means "all"
        assert!(parse_args(args(&["fig10", "--walkers", "0"])).is_err());
        assert!(parse_args(args(&["fig10", "--epochs", "0"])).is_err());
        assert!(parse_args(args(&["fig10", "--threads", "0"])).is_ok());
    }

    #[test]
    fn validators_and_backend_reach_the_config() {
        let cli = parse_args(args(&[
            "fig2",
            "--validators",
            "1000000",
            "--backend=cohort",
        ]))
        .unwrap();
        let Cli::Run { mc, .. } = cli else {
            panic!("not a run: {cli:?}");
        };
        assert_eq!(mc.validators, Some(1_000_000));
        assert_eq!(mc.backend, BackendKind::Cohort);
        let cli = parse_args(args(&["table2", "--validators=600", "--backend", "dense"])).unwrap();
        let Cli::Run { mc, .. } = cli else {
            panic!("not a run: {cli:?}");
        };
        assert_eq!(mc.validators, Some(600));
        assert_eq!(mc.backend, BackendKind::Dense);
        // defaults: cross-checks off, cohort backend
        let Ok(Cli::Run { mc, .. }) = parse_args(args(&["fig2"])) else {
            panic!("fig2 did not parse");
        };
        assert_eq!(mc.validators, None);
        assert_eq!(mc.backend, BackendKind::Cohort);
        // rejections
        assert!(parse_args(args(&["fig2", "--validators", "0"])).is_err());
        assert!(parse_args(args(&["fig2", "--backend", "sparse"])).is_err());
    }

    #[test]
    fn sweep_accepts_validators_scalar_and_grid() {
        let Ok(Cli::Sweep { spec, .. }) = parse_args(args(&[
            "sweep",
            "--validators",
            "1200",
            "--backend",
            "cohort",
        ])) else {
            panic!("sweep did not parse");
        };
        assert_eq!(spec.validators, vec![1200]);
        assert_eq!(spec.backend, BackendKind::Cohort);
        // the grid axis wins over the scalar, like walkers
        let Ok(Cli::Sweep { spec, .. }) = parse_args(args(&[
            "sweep",
            "--grid",
            "validators=600,1000000",
            "--validators",
            "1200",
        ])) else {
            panic!("sweep did not parse");
        };
        assert_eq!(spec.validators, vec![600, 1_000_000]);
    }

    #[test]
    fn fig2_cross_check_rides_along_at_small_n() {
        let cli = parse_args(args(&[
            "fig2",
            "--validators",
            "20",
            "--backend",
            "cohort",
            "--epochs",
            "64",
            "--format",
            "json",
        ]))
        .unwrap();
        let value: serde_json::Value = serde_json::from_str(&run(&cli)).unwrap();
        let tables = value.get("tables").and_then(|v| v.as_array()).unwrap();
        assert_eq!(tables.len(), 2); // closed-form + discrete cross-check
        let text = serde_json::to_string(&tables[1]).unwrap();
        assert!(text.contains("cohort backend"), "{text}");
    }

    #[test]
    fn sweep_parses_with_grid_directives() {
        let cli = parse_args(args(&[
            "sweep",
            "--grid",
            "beta0=0.3,0.32",
            "--grid=semantics=paper,spec",
            "--walkers",
            "500",
            "--epochs",
            "200",
            "--threads",
            "2",
            "--seed=9",
        ]))
        .unwrap();
        let Cli::Sweep { spec, format, .. } = cli else {
            panic!("not a sweep: {cli:?}");
        };
        assert_eq!(format, Format::Text);
        assert_eq!(spec.beta0, vec![0.3, 0.32]);
        assert_eq!(
            spec.semantics,
            vec![PenaltySemantics::Paper, PenaltySemantics::Spec]
        );
        assert_eq!(spec.walkers, vec![500]);
        assert_eq!(spec.epochs, 200);
        assert_eq!(spec.threads, 2);
        assert_eq!(spec.seed, 9);
    }

    #[test]
    fn grid_walkers_wins_over_scalar_walkers() {
        let Ok(Cli::Sweep { spec, .. }) = parse_args(args(&[
            "sweep",
            "--grid",
            "walkers=100,200",
            "--walkers",
            "5000",
        ])) else {
            panic!("sweep did not parse");
        };
        assert_eq!(spec.walkers, vec![100, 200]);
    }

    #[test]
    fn sweep_misuse_is_a_usage_error() {
        // grid without sweep
        assert!(matches!(
            parse_args(args(&["fig2", "--grid", "beta0=0.3"])),
            Err(CliError::Usage(_))
        ));
        // sweep with an experiment id
        assert!(matches!(
            parse_args(args(&["sweep", "fig2"])),
            Err(CliError::Usage(_))
        ));
        // malformed directives surface the sweep parser's message
        assert!(matches!(
            parse_args(args(&["sweep", "--grid", "gamma=1"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(args(&["sweep", "--grid", "beta0=2"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn search_parses_with_objective_defaults() {
        let Ok(Cli::Search {
            spec,
            format,
            out,
            stats_out,
            obs,
        }) = parse_args(args(&["search"]))
        else {
            panic!("bare search did not parse");
        };
        assert_eq!(format, Format::Text);
        assert_eq!(out, None);
        assert_eq!(stats_out, None);
        assert!(obs.is_empty());
        assert_eq!(spec, SearchSpec::new(Objective::Conflict));
        // the delay objective switches β0 and the horizon
        let Ok(Cli::Search { spec, .. }) =
            parse_args(args(&["search", "--objective", "non-slashable-horizon"]))
        else {
            panic!("search did not parse");
        };
        assert_eq!(spec.objective, Objective::NonSlashableHorizon);
        assert_eq!(spec.beta0, 0.33);
        assert_eq!(spec.epochs, 8192);
    }

    #[test]
    fn search_knobs_reach_the_spec() {
        let Ok(Cli::Search { spec, .. }) = parse_args(args(&[
            "search",
            "--objective=conflict",
            "--budget",
            "64",
            "--beta0=0.25",
            "--p0",
            "0.6",
            "--validators",
            "1200",
            "--backend=dense",
            "--epochs",
            "700",
            "--max-period",
            "2",
            "--seed=5",
            "--threads",
            "3",
        ])) else {
            panic!("search did not parse");
        };
        assert_eq!(spec.budget, 64);
        assert_eq!(spec.beta0, 0.25);
        assert_eq!(spec.p0, 0.6);
        assert_eq!(spec.n, 1200);
        assert_eq!(spec.backend, BackendKind::Dense);
        assert_eq!(spec.epochs, 700);
        assert_eq!(spec.max_period, 2);
        assert_eq!(spec.seed, 5);
        assert_eq!(spec.threads, 3);
    }

    #[test]
    fn search_misuse_is_a_usage_error() {
        for bad in [
            &["search", "fig2"] as &[&str],
            &["search", "--objective", "mayhem"],
            &["search", "--budget", "0"],
            &["search", "--beta0", "1.5"],
            &["search", "--max-period", "40"],
            &["search", "--grid", "beta0=0.3"],
            &["search", "--walkers", "100"],
            &["search", "sweep"],
            &["fig2", "--objective", "conflict"],
            &["fig2", "--budget", "9"],
            &["sweep", "--beta0", "0.3"],
        ] {
            assert!(
                matches!(parse_args(args(bad)), Err(CliError::Usage(_))),
                "{bad:?} was accepted"
            );
        }
    }

    #[test]
    fn out_flag_is_captured_in_every_mode() {
        let cli = parse_args(args(&["fig2", "--out", "a.json"])).unwrap();
        assert_eq!(cli.out(), Some("a.json"));
        let cli = parse_args(args(&["sweep", "--out=b.json"])).unwrap();
        assert_eq!(cli.out(), Some("b.json"));
        let cli = parse_args(args(&["search", "--out", "c.json"])).unwrap();
        assert_eq!(cli.out(), Some("c.json"));
        let cli = parse_args(args(&["chaos", "--out", "d.json"])).unwrap();
        assert_eq!(cli.out(), Some("d.json"));
        assert_eq!(parse_args(args(&["--list"])).unwrap().out(), None);
        assert!(parse_args(args(&["fig2", "--out"])).is_err());
    }

    #[test]
    fn obs_flags_are_captured_in_every_run_mode() {
        for mode in [
            &["fig2"] as &[&str],
            &["sweep"],
            &["search"],
            &["partition"],
            &["chaos"],
        ] {
            let mut argv = args(mode);
            argv.extend(args(&[
                "--metrics-out",
                "m.prom",
                "--metrics-format=json",
                "--trace-out",
                "t.json",
            ]));
            let cli = parse_args(argv).unwrap();
            let obs = cli.obs().unwrap_or_else(|| panic!("{mode:?}: no obs"));
            assert_eq!(obs.metrics_out.as_deref(), Some("m.prom"));
            assert_eq!(obs.metrics_format, MetricsFormat::Json);
            assert_eq!(obs.trace_out.as_deref(), Some("t.json"));
        }
        // defaults: everything off, Prometheus exposition
        let cli = parse_args(args(&["fig2", "--metrics-out", "m.prom"])).unwrap();
        let obs = cli.obs().unwrap();
        assert_eq!(obs.metrics_format, MetricsFormat::Prometheus);
        assert_eq!(obs.trace_out, None);
        assert!(!obs.is_empty());
        // trace alone is fine too
        let cli = parse_args(args(&["partition", "--trace-out=t.json"])).unwrap();
        assert_eq!(cli.obs().unwrap().metrics_out, None);
    }

    #[test]
    fn obs_flag_misuse_is_a_usage_error() {
        for bad in [
            // a format with nowhere to go
            &["fig2", "--metrics-format", "prom"] as &[&str],
            &["chaos", "--metrics-format=json"],
            // unknown exposition format
            &["fig2", "--metrics-out", "m", "--metrics-format", "yaml"],
            // missing values
            &["fig2", "--metrics-out"],
            &["fig2", "--trace-out"],
        ] {
            assert!(
                matches!(parse_args(args(bad)), Err(CliError::Usage(_))),
                "{bad:?} was accepted"
            );
        }
    }

    #[test]
    fn frontier_experiment_is_listed_and_runs_in_all() {
        assert_eq!(
            Experiment::from_id("frontier"),
            Some(Experiment::AttackFrontier)
        );
        let Ok(Cli::Run { experiments, .. }) = parse_args(args(&["all"])) else {
            panic!("`all` did not parse");
        };
        assert!(experiments.contains(&Experiment::AttackFrontier));
    }

    #[test]
    fn search_run_emits_valid_json() {
        let cli = parse_args(args(&[
            "search",
            "--validators",
            "120",
            "--beta0=0.34",
            "--epochs",
            "60",
            "--budget",
            "10",
            "--max-period=2",
            "--threads",
            "1",
            "--format",
            "json",
        ]))
        .unwrap();
        let value: serde_json::Value = serde_json::from_str(&run(&cli)).unwrap();
        assert_eq!(
            value.get("objective").and_then(|v| v.as_str()),
            Some("conflict")
        );
        let rows = value.get("rows").and_then(|v| v.as_array()).unwrap();
        assert!(!rows.is_empty());
        assert!(value.get("best").is_some());
    }

    #[test]
    fn json_run_emits_one_valid_document() {
        let cli = parse_args(args(&["table2", "--format", "json"])).unwrap();
        let out = run(&cli);
        let value: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(
            value.get("experiment").and_then(|v| v.as_str()),
            Some("Table2Slashable")
        );
        assert!(value.get("tables").is_some());

        let cli = parse_args(args(&["fig8", "table1", "--format", "json"])).unwrap();
        let value: serde_json::Value = serde_json::from_str(&run(&cli)).unwrap();
        let items = value.as_array().expect("array for multiple experiments");
        assert_eq!(items.len(), 2);
    }

    #[test]
    fn partition_parses_with_preset_defaults() {
        let Ok(Cli::Partition {
            spec, format, out, ..
        }) = parse_args(args(&["partition"]))
        else {
            panic!("bare partition did not parse");
        };
        assert_eq!(format, Format::Text);
        assert_eq!(out, None);
        assert_eq!(spec, PartitionSpec::default());
        assert_eq!(spec.n, 1_000_000);
        assert_eq!(spec.backend, BackendKind::Cohort);
        assert_eq!(spec.scenarios.len(), 2);
    }

    #[test]
    fn partition_knobs_reach_the_spec() {
        let Ok(Cli::Partition { spec, .. }) = parse_args(args(&[
            "partition",
            "--timeline",
            "three-branch",
            "--timeline=split@0:0=0.5,0.5",
            "--strategy",
            "dual-active",
            "--beta0=0.3",
            "--epochs",
            "700",
            "--validators",
            "3000",
            "--backend=dense",
            "--seed=4",
            "--threads",
            "2",
        ])) else {
            panic!("partition did not parse");
        };
        assert_eq!(spec.scenarios.len(), 2);
        // explicit flags override the preset's own knobs too
        for scenario in &spec.scenarios {
            assert_eq!(scenario.strategy, StrategyKind::DualActive);
            assert_eq!(scenario.beta0, 0.3);
            assert_eq!(scenario.epochs, 700);
        }
        assert_eq!(spec.n, 3000);
        assert_eq!(spec.backend, BackendKind::Dense);
        assert_eq!(spec.seed, 4);
        assert_eq!(spec.threads, 2);
    }

    #[test]
    fn partition_misuse_is_a_usage_error() {
        for bad in [
            &["partition", "fig2"] as &[&str],
            &["partition", "sweep"],
            &["partition", "--timeline", "gibberish"],
            &["partition", "--timeline", "split@0:0=0.5"],
            &["partition", "--strategy", "mayhem"],
            &["partition", "--walkers", "100"],
            &["partition", "--objective", "conflict"],
            &["partition", "--p0", "0.5"],
            &["partition", "--grid", "beta0=0.3"],
            &["fig2", "--timeline", "three-branch"],
            &["sweep", "--strategy", "rotate"],
            &["search", "--timeline", "three-branch"],
            &["--regen-golden", "dir", "fig2"],
            &["partition", "--regen-golden", "dir"],
            // the paper's two-branch machine cannot observe k ≠ 2
            &[
                "partition",
                "--timeline",
                "split@0:0=0.4,0.3,0.3",
                "--strategy",
                "semi-active",
            ],
            &[
                "partition",
                "--timeline",
                "three-branch",
                "--strategy",
                "semi-active",
            ],
            &[
                "partition",
                "--timeline",
                "heal-resplit",
                "--strategy",
                "semi-active",
            ],
        ] {
            assert!(
                matches!(parse_args(args(bad)), Err(CliError::Usage(_))),
                "{bad:?} was accepted"
            );
        }
    }

    #[test]
    fn semi_active_is_accepted_on_two_branch_timelines() {
        let Ok(Cli::Partition { spec, .. }) = parse_args(args(&[
            "partition",
            "--timeline",
            "split@0:0=0.5,0.5",
            "--strategy",
            "semi-active",
        ])) else {
            panic!("two-branch semi-active did not parse");
        };
        assert_eq!(spec.scenarios[0].strategy, StrategyKind::SemiActive);
    }

    #[test]
    fn partition_run_emits_valid_json() {
        let cli = parse_args(args(&[
            "partition",
            "--validators",
            "3000",
            "--threads",
            "1",
            "--format",
            "json",
        ]))
        .unwrap();
        let value: serde_json::Value = serde_json::from_str(&run(&cli)).unwrap();
        assert_eq!(value.get("n").and_then(|v| v.as_u64()), Some(3000));
        let rows = value.get("rows").and_then(|v| v.as_array()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0].get("scenario").and_then(|v| v.as_str()),
            Some("three-branch")
        );
        assert!(rows[0].get("conflict_epoch").is_some());
    }

    #[test]
    fn regen_golden_writes_the_paper_and_chaos_fixtures() {
        let dir = std::env::temp_dir().join(format!("ethpos-golden-{}", std::process::id()));
        let cli = parse_args(args(&["--regen-golden", dir.to_str().unwrap()])).unwrap();
        assert_eq!(
            cli,
            Cli::RegenGolden {
                dir: dir.to_str().unwrap().into()
            }
        );
        let message = run(&cli);
        // five paper scenarios + the three chaos replay fixtures
        assert_eq!(message.lines().count(), 8, "{message}");
        for scenario in ethpos_core::golden::scenarios() {
            let path = dir.join(scenario.file_name());
            assert!(path.exists(), "{path:?} missing");
        }
        for name in [
            "expected_attack_exemplar.json",
            "shrunk_conflict_floor.json",
            "shrunk_liveness_grace.json",
        ] {
            let path = dir.join("chaos").join(name);
            assert!(path.exists(), "{path:?} missing");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chaos_parses_with_defaults() {
        let Ok(Cli::Chaos {
            spec,
            format,
            out,
            stats_out,
            obs,
        }) = parse_args(args(&["chaos"]))
        else {
            panic!("bare chaos did not parse");
        };
        assert_eq!(format, Format::Text);
        assert_eq!(out, None);
        assert_eq!(stats_out, None);
        assert!(obs.is_empty());
        assert_eq!(spec, ChaosSpec::default());
        assert_eq!(spec.n, 1_000_000);
        assert_eq!(spec.backend, BackendKind::Cohort);
        assert_eq!(spec.budget, 256);
        assert_eq!(spec.seed, 1);
    }

    #[test]
    fn chaos_knobs_reach_the_spec() {
        let Ok(Cli::Chaos { spec, .. }) = parse_args(args(&[
            "chaos",
            "--budget",
            "64",
            "--seed=9",
            "--epochs",
            "2048",
            "--validators",
            "65536",
            "--backend=dense",
            "--threads",
            "2",
        ])) else {
            panic!("chaos did not parse");
        };
        assert_eq!(spec.budget, 64);
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.max_epochs, 2048);
        assert_eq!(spec.n, 65536);
        assert_eq!(spec.backend, BackendKind::Dense);
        assert_eq!(spec.threads, 2);
    }

    #[test]
    fn chaos_misuse_is_a_usage_error() {
        for bad in [
            &["chaos", "fig2"] as &[&str],
            &["chaos", "sweep"],
            &["chaos", "search"],
            &["chaos", "partition"],
            &["chaos", "--budget", "0"],
            &["chaos", "--walkers", "100"],
            &["chaos", "--grid", "beta0=0.3"],
            // the campaign samples its own splits and adversaries
            &["chaos", "--beta0", "0.3"],
            &["chaos", "--p0", "0.5"],
            &["chaos", "--objective", "conflict"],
            &["chaos", "--max-period", "2"],
            &["chaos", "--timeline", "three-branch"],
            &["chaos", "--strategy", "rotate"],
            &["chaos", "--regen-golden", "dir"],
        ] {
            assert!(
                matches!(parse_args(args(bad)), Err(CliError::Usage(_))),
                "{bad:?} was accepted"
            );
        }
    }

    #[test]
    fn chaos_run_emits_valid_json() {
        let cli = parse_args(args(&[
            "chaos",
            "--budget",
            "3",
            "--seed=5",
            "--validators",
            "4096",
            "--epochs",
            "256",
            "--threads",
            "1",
            "--format",
            "json",
        ]))
        .unwrap();
        let value: serde_json::Value = serde_json::from_str(&run(&cli)).unwrap();
        assert_eq!(value.get("budget").and_then(|v| v.as_u64()), Some(3));
        assert_eq!(value.get("seed").and_then(|v| v.as_u64()), Some(5));
        let rows = value.get("rows").and_then(|v| v.as_array()).unwrap();
        assert_eq!(rows.len(), 3);
        assert!(value.get("counts").is_some());
        let violations = value.get("violations").and_then(|v| v.as_array()).unwrap();
        assert!(violations.is_empty(), "healthy engine, no violations");
    }

    #[test]
    fn sweep_run_emits_valid_json() {
        let cli = parse_args(args(&[
            "sweep",
            "--grid",
            "beta0=0.3,0.333",
            "--walkers",
            "256",
            "--epochs",
            "100",
            "--format",
            "json",
        ]))
        .unwrap();
        let value: serde_json::Value = serde_json::from_str(&run(&cli)).unwrap();
        assert_eq!(value.get("epochs").and_then(|v| v.as_u64()), Some(100));
        let rows = value.get("rows").and_then(|v| v.as_array()).unwrap();
        assert_eq!(rows.len(), 2);
    }
}

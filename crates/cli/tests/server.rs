//! The resident service, checked at the process boundary: a real
//! `ethpos-cli serve` child on an ephemeral port, driven over real
//! sockets. Pins the cache contract end to end — a cold run and its
//! cache hit are byte-identical to each other *and* to the plain CLI
//! invocation of the same spec, malformed requests leave no trace, and
//! the cache (being content-addressed files) survives a restart.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A serve child that dies with the test (pass or panic).
struct ServerGuard {
    child: Child,
    addr: String,
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

/// A collision-free temp path (process id + caller tag).
fn temp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ethpos-serve-{}-{tag}", std::process::id()))
}

/// Spawns `ethpos-cli serve` on an ephemeral port and parses the
/// resolved address from its announcement line.
fn start_server(cache_dir: &Path) -> ServerGuard {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ethpos-cli"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--cache-dir",
            cache_dir.to_str().unwrap(),
            "--threads",
            "2",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn ethpos-cli serve");
    let stdout = child.stdout.take().expect("child stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read announcement");
    let addr = line
        .trim()
        .strip_prefix("ethpos-server listening on http://")
        .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
        .to_string();
    ServerGuard { child, addr }
}

/// One raw HTTP exchange: status code and body.
fn exchange(addr: &str, request: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request.as_bytes()).expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("receive");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .unwrap_or_else(|| panic!("no status line in {raw:?}"))
        .parse()
        .expect("status code");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: &str, path: &str) -> (u16, String) {
    exchange(addr, &format!("GET {path} HTTP/1.1\r\nhost: x\r\n\r\n"))
}

fn post(addr: &str, path: &str, body: &str) -> (u16, String) {
    exchange(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nhost: x\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn json(body: &str) -> serde_json::Value {
    serde_json::from_str(body.trim()).unwrap_or_else(|e| panic!("bad JSON {body:?}: {e:?}"))
}

fn str_field(value: &serde_json::Value, key: &str) -> String {
    value
        .get(key)
        .and_then(|v| v.as_str())
        .unwrap_or_else(|| panic!("missing `{key}` in {value:?}"))
        .to_string()
}

/// Polls a job until it settles, asserting it settles as done.
fn poll_done(addr: &str, job: u64) -> serde_json::Value {
    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        let (status, body) = get(addr, &format!("/v1/jobs/{job}"));
        assert_eq!(status, 200, "{body}");
        let value = json(&body);
        match str_field(&value, "status").as_str() {
            "done" => return value,
            "error" => panic!("job failed: {body}"),
            _ => {}
        }
        assert!(Instant::now() < deadline, "job {job} never settled");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// The service's reason to exist: a repeated request is served from the
/// cache byte-identical to the cold run — and both equal the plain CLI
/// document for the same spec, because CLI and server share one
/// execution path.
#[test]
fn cache_hit_is_byte_identical_to_cold_run_and_cli() {
    let cache_dir = temp("hit");
    std::fs::remove_dir_all(&cache_dir).ok();
    let server = start_server(&cache_dir);
    let (status, body) = get(&server.addr, "/healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    let request = r#"{"kind": "partition", "validators": 800, "format": "json"}"#;
    let (status, body) = post(&server.addr, "/v1/jobs", request);
    assert_eq!(status, 202, "{body}");
    let submitted = json(&body);
    assert_eq!(
        submitted.get("cached"),
        Some(&serde_json::Value::Bool(false))
    );
    let job = submitted
        .get("job")
        .and_then(|v| v.as_u64())
        .expect("job id");

    let done = poll_done(&server.addr, job);
    let cold_document = str_field(&done, "document");
    let artifact = str_field(&done, "artifact");

    // The cache hit: same request → 200, no new job, identical bytes.
    let (status, body) = post(&server.addr, "/v1/jobs", request);
    assert_eq!(status, 200, "{body}");
    let hit = json(&body);
    assert_eq!(hit.get("cached"), Some(&serde_json::Value::Bool(true)));
    assert_eq!(str_field(&hit, "document"), cold_document);
    assert_eq!(str_field(&hit, "artifact"), artifact);

    // The artifact endpoint serves the raw bytes.
    let (status, fetched) = get(&server.addr, &format!("/v1/artifacts/{artifact}"));
    assert_eq!(status, 200);
    assert_eq!(fetched, cold_document);

    // And the plain CLI renders the same document for the same spec.
    let cli = Command::new(env!("CARGO_BIN_EXE_ethpos-cli"))
        .args(["partition", "--validators", "800", "--format", "json"])
        .output()
        .expect("spawn ethpos-cli");
    assert!(cli.status.success());
    assert_eq!(String::from_utf8(cli.stdout).unwrap(), cold_document);

    // /metrics is live exposition and saw all of this.
    let (status, prom) = get(&server.addr, "/metrics");
    assert_eq!(status, 200);
    for series in [
        "ethpos_server_requests_total{route=\"submit\"}",
        "ethpos_server_cache_hits_total 1",
        "ethpos_server_cache_misses_total 1",
        "ethpos_server_jobs_completed_total 1",
    ] {
        assert!(prom.contains(series), "missing {series}:\n{prom}");
    }
    drop(server);
    std::fs::remove_dir_all(&cache_dir).ok();
}

/// Malformed requests answer 400 and leave the cache untouched.
#[test]
fn malformed_requests_never_reach_the_cache() {
    let cache_dir = temp("malformed");
    std::fs::remove_dir_all(&cache_dir).ok();
    let server = start_server(&cache_dir);
    for (body, expected) in [
        ("{", "invalid JSON"),
        (r#"{"kind": "teapot"}"#, "unknown kind"),
        (r#"{"kind": "sweep", "beta0": [2.0]}"#, "beta0"),
        (
            r#"{"kind": "experiment", "experiments": ["fig2"], "walkerz": 1}"#,
            "unknown field",
        ),
    ] {
        let (status, response) = post(&server.addr, "/v1/jobs", body);
        assert_eq!(status, 400, "{body}: {response}");
        assert!(response.contains(expected), "{body}: {response}");
    }
    let entries: Vec<_> = std::fs::read_dir(&cache_dir).expect("cache dir").collect();
    assert!(entries.is_empty(), "cache written on 400: {entries:?}");
    drop(server);
    std::fs::remove_dir_all(&cache_dir).ok();
}

/// The cache is plain content-addressed files: a restarted server (new
/// process, same directory) answers a previously-computed request as a
/// hit without re-simulating.
#[test]
fn cache_survives_a_server_restart() {
    let cache_dir = temp("restart");
    std::fs::remove_dir_all(&cache_dir).ok();
    let request = r#"{"kind": "sweep", "beta0": [0.3], "p0": [0.5], "walkers": [400],
                      "epochs": 300, "format": "json"}"#;
    let first = start_server(&cache_dir);
    let (status, body) = post(&first.addr, "/v1/jobs", request);
    assert_eq!(status, 202, "{body}");
    let job = json(&body)
        .get("job")
        .and_then(|v| v.as_u64())
        .expect("job id");
    let done = poll_done(&first.addr, job);
    let document = str_field(&done, "document");
    drop(first);

    let second = start_server(&cache_dir);
    let (status, body) = post(&second.addr, "/v1/jobs", request);
    assert_eq!(status, 200, "restart lost the cache: {body}");
    let hit = json(&body);
    assert_eq!(hit.get("cached"), Some(&serde_json::Value::Bool(true)));
    assert_eq!(str_field(&hit, "document"), document);
    drop(second);
    std::fs::remove_dir_all(&cache_dir).ok();
}

//! End-to-end tests of the `ethpos-cli` binary: experiment-id parsing at
//! the process boundary, exit codes, and JSON that round-trips through
//! serde.

use std::process::{Command, Output};

fn ethpos_cli(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ethpos-cli"))
        .args(args)
        .output()
        .expect("spawn ethpos-cli")
}

#[test]
fn single_experiment_renders_text() {
    let out = ethpos_cli(&["table2"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.starts_with("# "), "no title in:\n{text}");
    // Paper headline: conflicting finalization at epoch 3107 for β0 = 0.33.
    assert!(text.contains("3107"), "missing headline number:\n{text}");
}

#[test]
fn json_output_round_trips_through_serde() {
    let out = ethpos_cli(&["fig8", "--format", "json"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    let value: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    assert_eq!(
        value.get("experiment").and_then(|v| v.as_str()),
        Some("Fig8MarkovTransitions")
    );
    for key in ["title", "tables", "series"] {
        assert!(value.get(key).is_some(), "missing `{key}`");
    }
    // Render → parse → render is a fixed point, i.e. the JSON truly
    // round-trips through the serde value model.
    let rendered = serde_json::to_string_pretty(&value).unwrap();
    let reparsed: serde_json::Value = serde_json::from_str(&rendered).unwrap();
    assert_eq!(reparsed, value);
}

#[test]
fn unknown_experiment_fails_with_usage() {
    let out = ethpos_cli(&["fig42"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown experiment `fig42`"), "stderr: {err}");
    assert!(err.contains("USAGE"), "stderr: {err}");
}

#[test]
fn list_names_every_experiment() {
    let out = ethpos_cli(&["--list"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for id in [
        "fig2", "fig3", "fig6", "fig7", "fig8", "fig9", "fig10", "table1", "table2", "table3",
    ] {
        assert!(text.contains(id), "`{id}` missing from --list:\n{text}");
    }
}

/// Runs the binary and returns raw stdout, asserting success.
fn stdout_bytes(args: &[&str]) -> Vec<u8> {
    let out = ethpos_cli(args);
    assert!(
        out.status.success(),
        "{args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

/// The workspace determinism model, observed at the process boundary:
/// the fig10 JSON (including its Monte-Carlo cross-check table) is
/// byte-identical for any `--threads` value.
#[test]
fn fig10_json_is_byte_identical_across_thread_counts() {
    let run = |threads: &str| {
        stdout_bytes(&[
            "fig10",
            "--walkers",
            "2048",
            "--epochs",
            "400",
            "--seed",
            "42",
            "--format",
            "json",
            "--threads",
            threads,
        ])
    };
    let one = run("1");
    assert!(!one.is_empty());
    for threads in ["2", "8"] {
        assert_eq!(run(threads), one, "--threads {threads} changed fig10");
    }
}

/// Same property for a sweep grid: `--threads` may only change
/// wall-clock time.
#[test]
fn sweep_json_is_byte_identical_across_thread_counts() {
    let run = |threads: &str| {
        stdout_bytes(&[
            "sweep",
            "--grid",
            "beta0=0.3,0.333",
            "--grid",
            "semantics=paper,spec",
            "--walkers",
            "1024",
            "--epochs",
            "300",
            "--format",
            "json",
            "--threads",
            threads,
        ])
    };
    let one = run("1");
    for threads in ["2", "8"] {
        assert_eq!(run(threads), one, "--threads {threads} changed the sweep");
    }
    // and the document is valid JSON with the full grid
    let text = String::from_utf8(one).expect("utf-8");
    let value: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    let rows = value.get("rows").and_then(|v| v.as_array()).unwrap();
    assert_eq!(rows.len(), 4);
}

#[test]
fn sweep_text_renders_the_grid_table() {
    let out = stdout_bytes(&[
        "sweep",
        "--walkers",
        "512",
        "--epochs",
        "200",
        "--threads",
        "2",
    ]);
    let text = String::from_utf8(out).unwrap();
    assert!(text.contains("Parameter sweep"), "{text}");
    // One row per default-grid β0, matched as whole padded table cells
    // so a shorter value cannot satisfy a longer one's assertion.
    for cell in ["| 0.3   |", "| 0.33  |", "| 0.333 |"] {
        assert!(text.contains(cell), "missing β0 row `{cell}`:\n{text}");
    }
}

#[test]
fn sweep_rejects_bad_grid_axis() {
    let out = ethpos_cli(&["sweep", "--grid", "gamma=1"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown grid axis"), "stderr: {err}");
}

/// `--out` writes exactly the document that would have gone to stdout,
/// and keeps stdout empty (the confirmation goes to stderr).
#[test]
fn out_flag_writes_the_stdout_document_to_a_file() {
    let path = std::env::temp_dir().join(format!("ethpos-out-{}.json", std::process::id()));
    let path_str = path.to_str().unwrap();
    let stdout = stdout_bytes(&["table2", "--format", "json"]);
    let out = ethpos_cli(&["table2", "--format", "json", "--out", path_str]);
    assert!(out.status.success());
    assert!(out.stdout.is_empty(), "stdout must stay clean with --out");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("wrote"), "stderr: {err}");
    let written = std::fs::read(&path).expect("file written");
    assert_eq!(written, stdout, "--out bytes differ from stdout bytes");
    std::fs::remove_file(&path).ok();
}

/// Writing to an impossible path fails loudly with a non-zero exit.
#[test]
fn out_flag_to_bad_path_fails() {
    let out = ethpos_cli(&["table1", "--out", "/nonexistent-dir/x/y.json"]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("cannot write"), "stderr: {err}");
}

/// A tiny end-to-end search: the subcommand runs, reports a frontier,
/// and the winner at β0 > ⅓ is the paper's dual-active strategy.
#[test]
fn search_subcommand_end_to_end() {
    let out = stdout_bytes(&[
        "search",
        "--validators",
        "120",
        "--beta0",
        "0.34",
        "--epochs",
        "60",
        "--budget",
        "12",
        "--max-period",
        "2",
        "--threads",
        "2",
    ]);
    let text = String::from_utf8(out).unwrap();
    assert!(text.contains("Attack search"), "{text}");
    assert!(text.contains("dual-active"), "{text}");
}

/// A small end-to-end partition run: both preset timelines execute and
/// report conflicting finalization with the conflicting branch pair.
#[test]
fn partition_subcommand_end_to_end() {
    let out = stdout_bytes(&["partition", "--validators", "3000", "--threads", "2"]);
    let text = String::from_utf8(out).unwrap();
    assert!(text.contains("Partition timelines"), "{text}");
    assert!(text.contains("three-branch"), "{text}");
    assert!(text.contains("heal-resplit"), "{text}");
    assert!(text.contains("split@0:0=0.5,0.5; heal@300:0<-1"), "{text}");
}

/// The partition report honours the workspace determinism model at the
/// process boundary: byte-identical JSON for any `--threads` value.
#[test]
fn partition_json_is_byte_identical_across_thread_counts() {
    let run = |threads: &str| {
        stdout_bytes(&[
            "partition",
            "--validators",
            "3000",
            "--format",
            "json",
            "--threads",
            threads,
        ])
    };
    let one = run("1");
    assert!(!one.is_empty());
    for threads in ["2", "8"] {
        assert_eq!(run(threads), one, "--threads {threads} changed the report");
    }
    let text = String::from_utf8(one).expect("utf-8");
    let value: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    let rows = value.get("rows").and_then(|v| v.as_array()).unwrap();
    assert_eq!(rows.len(), 2);
    assert!(rows.iter().all(|r| r
        .get("conflict_epoch")
        .map(|t| !t.is_null())
        .unwrap_or(false)));
}

/// A raw `--timeline` spec runs end-to-end, and a malformed one fails
/// with a usage error naming the problem.
#[test]
fn partition_timeline_spec_end_to_end() {
    let out = stdout_bytes(&[
        "partition",
        "--timeline",
        "split@0:0=0.5,0.5",
        "--strategy",
        "dual-active",
        "--beta0",
        "0.34",
        "--epochs",
        "60",
        "--validators",
        "300",
        "--threads",
        "1",
    ]);
    let text = String::from_utf8(out).unwrap();
    assert!(text.contains("dual-active"), "{text}");
    let bad = ethpos_cli(&["partition", "--timeline", "split@0:7=0.5,0.5"]);
    assert_eq!(bad.status.code(), Some(2));
    let err = String::from_utf8(bad.stderr).unwrap();
    assert!(err.contains("not live"), "stderr: {err}");
}

/// A `--regen-golden` that cannot write must exit non-zero with the
/// error on stderr — a scripted `--regen-golden && git diff` must never
/// proceed on stale fixtures.
#[test]
fn regen_golden_to_bad_path_fails() {
    // Under /dev/null the directory creation fails (ENOTDIR) even for
    // privileged test environments.
    let out = ethpos_cli(&["--regen-golden", "/dev/null/golden"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(out.stdout.is_empty(), "no success output on failure");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("cannot write the golden corpus"),
        "stderr: {err}"
    );
}

/// The search frontier honours the workspace determinism model at the
/// process boundary: byte-identical JSON for any `--threads` value.
#[test]
fn search_json_is_byte_identical_across_thread_counts() {
    let run = |threads: &str| {
        stdout_bytes(&[
            "search",
            "--validators",
            "120",
            "--beta0",
            "0.34",
            "--epochs",
            "80",
            "--budget",
            "16",
            "--max-period",
            "2",
            "--seed",
            "3",
            "--format",
            "json",
            "--threads",
            threads,
        ])
    };
    let one = run("1");
    assert!(!one.is_empty());
    for threads in ["2", "8"] {
        assert_eq!(
            run(threads),
            one,
            "--threads {threads} changed the frontier"
        );
    }
}

//! End-to-end tests of the `ethpos-cli` binary: experiment-id parsing at
//! the process boundary, exit codes, and JSON that round-trips through
//! serde.

use std::process::{Command, Output};

fn ethpos_cli(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ethpos-cli"))
        .args(args)
        .output()
        .expect("spawn ethpos-cli")
}

#[test]
fn single_experiment_renders_text() {
    let out = ethpos_cli(&["table2"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.starts_with("# "), "no title in:\n{text}");
    // Paper headline: conflicting finalization at epoch 3107 for β0 = 0.33.
    assert!(text.contains("3107"), "missing headline number:\n{text}");
}

#[test]
fn json_output_round_trips_through_serde() {
    let out = ethpos_cli(&["fig8", "--format", "json"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    let value: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    assert_eq!(
        value.get("experiment").and_then(|v| v.as_str()),
        Some("Fig8MarkovTransitions")
    );
    for key in ["title", "tables", "series"] {
        assert!(value.get(key).is_some(), "missing `{key}`");
    }
    // Render → parse → render is a fixed point, i.e. the JSON truly
    // round-trips through the serde value model.
    let rendered = serde_json::to_string_pretty(&value).unwrap();
    let reparsed: serde_json::Value = serde_json::from_str(&rendered).unwrap();
    assert_eq!(reparsed, value);
}

#[test]
fn unknown_experiment_fails_with_usage() {
    let out = ethpos_cli(&["fig42"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown experiment `fig42`"), "stderr: {err}");
    assert!(err.contains("USAGE"), "stderr: {err}");
}

#[test]
fn list_names_every_experiment() {
    let out = ethpos_cli(&["--list"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for id in [
        "fig2", "fig3", "fig6", "fig7", "fig8", "fig9", "fig10", "table1", "table2", "table3",
    ] {
        assert!(text.contains(id), "`{id}` missing from --list:\n{text}");
    }
}

//! The observability determinism wall, checked at the process boundary:
//! enabling `--metrics-out` / `--trace-out` must never change a byte of
//! any pinned document (reports, frontiers, stats artifacts), at any
//! `--threads` value — instrumentation is observation-only. Also checks
//! the artifacts themselves: valid Prometheus exposition, a valid JSON
//! snapshot, and a loadable Chrome trace with the expected series.

use std::path::PathBuf;
use std::process::{Command, Output};

fn ethpos_cli(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ethpos-cli"))
        .args(args)
        .output()
        .expect("spawn ethpos-cli")
}

/// Runs the binary and returns raw stdout, asserting success.
fn stdout_bytes(args: &[&str]) -> Vec<u8> {
    let out = ethpos_cli(args);
    assert!(
        out.status.success(),
        "{args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

/// A collision-free temp path (process id + caller tag).
fn temp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ethpos-obs-{}-{tag}", std::process::id()))
}

/// Reads and removes a temp artifact.
fn take(path: &PathBuf) -> String {
    let contents = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{path:?}: {e}"));
    std::fs::remove_file(path).ok();
    contents
}

const PARTITION_SMALL: &[&str] = &["partition", "--validators", "3000", "--format", "json"];

/// The tentpole acceptance property: the partition report is
/// byte-identical with instrumentation off, with metrics + tracing on,
/// and across `--threads` — while the artifacts carry the key series.
#[test]
fn partition_report_is_byte_identical_with_instrumentation_on() {
    let plain = stdout_bytes(&[PARTITION_SMALL, &["--threads", "1"]].concat());
    let metrics_path = temp("partition.prom");
    let trace_path = temp("partition.trace.json");
    for threads in ["1", "8"] {
        let instrumented = stdout_bytes(
            &[
                PARTITION_SMALL,
                &[
                    "--threads",
                    threads,
                    "--metrics-out",
                    metrics_path.to_str().unwrap(),
                    "--trace-out",
                    trace_path.to_str().unwrap(),
                ],
            ]
            .concat(),
        );
        assert_eq!(
            instrumented, plain,
            "instrumentation changed the report at --threads {threads}"
        );
        let prom = take(&metrics_path);
        // Chunk-pool throughput: two scenario tasks ran to completion.
        assert!(
            prom.contains("ethpos_chunk_pool_tasks_completed_total 2"),
            "--threads {threads}:\n{prom}"
        );
        // Per-stage epoch timings on the cohort backend (sampled 1-in-64).
        assert!(
            prom.contains("# TYPE ethpos_epoch_stage_seconds histogram"),
            "{prom}"
        );
        assert!(
            prom.contains("backend=\"cohort\",stage=\"justification\""),
            "{prom}"
        );
        // Fragmentation gauges, per branch.
        assert!(prom.contains("# TYPE ethpos_cohorts gauge"), "{prom}");
        assert!(prom.contains("ethpos_cohorts{branch=\"0\"}"), "{prom}");
        assert!(prom.contains("ethpos_max_cohorts_per_class{"), "{prom}");
        // End-of-run publication of the deterministic fork counters.
        assert!(prom.contains("ethpos_forks_total"), "{prom}");
        let trace = take(&trace_path);
        let value: serde_json::Value = serde_json::from_str(&trace).expect("valid trace JSON");
        let events = value
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        assert!(!events.is_empty(), "empty trace");
        // Scenario spans and per-epoch sim spans both make it in.
        let cat_of =
            |e: &serde_json::Value| e.get("cat").and_then(|v| v.as_str()).map(String::from);
        assert!(
            events
                .iter()
                .any(|e| cat_of(e).as_deref() == Some("partition")),
            "no partition span"
        );
        assert!(
            events.iter().any(|e| cat_of(e).as_deref() == Some("sim")),
            "no sim span"
        );
        // Every complete event carries the Chrome-required fields.
        for e in events {
            assert!(e.get("name").is_some() && e.get("ph").is_some() && e.get("ts").is_some());
        }
    }
}

/// The JSON exposition is a valid snapshot of the same registry.
#[test]
fn metrics_json_snapshot_is_valid() {
    let metrics_path = temp("partition.metrics.json");
    stdout_bytes(
        &[
            PARTITION_SMALL,
            &[
                "--threads",
                "2",
                "--metrics-out",
                metrics_path.to_str().unwrap(),
                "--metrics-format",
                "json",
            ],
        ]
        .concat(),
    );
    let snapshot = take(&metrics_path);
    let value: serde_json::Value = serde_json::from_str(&snapshot).expect("valid metrics JSON");
    let metrics = value
        .get("metrics")
        .and_then(|v| v.as_array())
        .expect("metrics array");
    let names: Vec<&str> = metrics
        .iter()
        .filter_map(|m| m.get("name").and_then(|v| v.as_str()))
        .collect();
    for expected in [
        "ethpos_chunk_pool_tasks_completed_total",
        "ethpos_epoch_stage_seconds",
        "ethpos_cohorts",
        "ethpos_churn_draws_total",
    ] {
        assert!(names.contains(&expected), "missing {expected}: {names:?}");
    }
}

/// The search frontier **and** its `--stats-out` artifact are
/// byte-identical with metrics enabled — the registry is a rendered
/// view of the same deterministic counters, not a second collector.
#[test]
fn search_stats_artifact_is_byte_identical_with_metrics_on() {
    let search: &[&str] = &[
        "search",
        "--validators",
        "120",
        "--beta0",
        "0.34",
        "--epochs",
        "80",
        "--budget",
        "16",
        "--max-period",
        "2",
        "--seed",
        "3",
        "--format",
        "json",
    ];
    let stats_path = temp("search.stats.json");
    let stats_arg: &[&str] = &["--stats-out", stats_path.to_str().unwrap()];
    let plain = stdout_bytes(&[search, stats_arg, &["--threads", "1"]].concat());
    let plain_stats = take(&stats_path);
    let metrics_path = temp("search.prom");
    for threads in ["1", "8"] {
        let instrumented = stdout_bytes(
            &[
                search,
                stats_arg,
                &[
                    "--threads",
                    threads,
                    "--metrics-out",
                    metrics_path.to_str().unwrap(),
                ],
            ]
            .concat(),
        );
        assert_eq!(instrumented, plain, "metrics changed the frontier");
        assert_eq!(
            take(&stats_path),
            plain_stats,
            "metrics changed --stats-out"
        );
        let prom = take(&metrics_path);
        assert!(
            prom.contains("ethpos_search_evaluations_total 16"),
            "{prom}"
        );
        assert!(
            prom.contains("ethpos_search_checkpoint_hits_total"),
            "{prom}"
        );
    }
}

/// Same wall for a chaos campaign: report and stats bytes survive
/// instrumentation, and the campaign publishes its verdict counters.
#[test]
fn chaos_report_is_byte_identical_with_instrumentation_on() {
    let chaos: &[&str] = &[
        "chaos",
        "--budget",
        "3",
        "--seed",
        "5",
        "--validators",
        "4096",
        "--epochs",
        "256",
        "--format",
        "json",
    ];
    let stats_path = temp("chaos.stats.json");
    let stats_arg: &[&str] = &["--stats-out", stats_path.to_str().unwrap()];
    let plain = stdout_bytes(&[chaos, stats_arg, &["--threads", "1"]].concat());
    let plain_stats = take(&stats_path);
    let metrics_path = temp("chaos.prom");
    let trace_path = temp("chaos.trace.json");
    for threads in ["1", "8"] {
        let instrumented = stdout_bytes(
            &[
                chaos,
                stats_arg,
                &[
                    "--threads",
                    threads,
                    "--metrics-out",
                    metrics_path.to_str().unwrap(),
                    "--trace-out",
                    trace_path.to_str().unwrap(),
                ],
            ]
            .concat(),
        );
        assert_eq!(instrumented, plain, "instrumentation changed the report");
        assert_eq!(
            take(&stats_path),
            plain_stats,
            "metrics changed --stats-out"
        );
        let prom = take(&metrics_path);
        assert!(prom.contains("ethpos_chaos_cases_total 3"), "{prom}");
        assert!(
            prom.contains("ethpos_chaos_verdicts_total{verdict="),
            "{prom}"
        );
        let trace = take(&trace_path);
        let value: serde_json::Value = serde_json::from_str(&trace).expect("valid trace JSON");
        let events = value.get("traceEvents").and_then(|v| v.as_array()).unwrap();
        assert!(
            events
                .iter()
                .any(|e| { e.get("cat").and_then(|v| v.as_str()) == Some("chaos") }),
            "no chaos span"
        );
    }
}

/// The registry is a *view* of the deterministic stats, never a second
/// collector: after a chaos campaign whose cross-checks re-run sims on
/// the dense backend (budget ≥ the every-16 cross-check cadence, so at
/// least two replays happen), the published fork/churn totals must equal
/// the byte-pinned `--stats-out` aggregate exactly. Per-run publication
/// inside `PartitionSim::finish` — the bug this pins — counted every
/// replay twice.
#[test]
fn chaos_registry_totals_equal_the_stats_artifact() {
    let stats_path = temp("chaos-regress.stats.json");
    let metrics_path = temp("chaos-regress.prom");
    stdout_bytes(&[
        "chaos",
        "--budget",
        "20",
        "--seed",
        "9",
        "--validators",
        "4096",
        "--epochs",
        "256",
        "--format",
        "json",
        "--stats-out",
        stats_path.to_str().unwrap(),
        "--metrics-out",
        metrics_path.to_str().unwrap(),
    ]);
    let stats: serde_json::Value =
        serde_json::from_str(&take(&stats_path)).expect("valid stats JSON");
    let stat = |group: &str, field: &str| {
        stats
            .get(group)
            .and_then(|g| g.get(field))
            .and_then(|v| v.as_u64())
            .unwrap_or_else(|| panic!("missing {group}.{field}: {stats:?}"))
    };
    // The campaign must actually have cross-checked (the re-run path
    // under test) — budget 20 crosses the default every-16 cadence at
    // least once, and one dense replay is enough to inflate the old
    // per-run publication.
    let prom = take(&metrics_path);
    let sample = |name: &str| {
        prom.lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or_else(|| panic!("missing sample {name}:\n{prom}"))
    };
    assert!(sample("ethpos_chaos_crosschecked_total") >= 1, "{prom}");
    for (metric, group, field) in [
        ("ethpos_forks_total", "fork", "forks"),
        ("ethpos_fork_epoch_sum_total", "fork", "fork_epoch_sum"),
        ("ethpos_fork_shared_chunks_total", "fork", "shared_chunks"),
        ("ethpos_churn_draws_total", "churn", "draws"),
        ("ethpos_churn_members_total", "churn", "members"),
    ] {
        assert_eq!(
            sample(metric),
            stat(group, field),
            "{metric} diverged from the stats artifact:\n{prom}"
        );
    }
}

/// The golden-pinned experiment documents survive instrumentation too.
#[test]
fn experiment_json_is_byte_identical_with_instrumentation_on() {
    let plain = stdout_bytes(&["table2", "--format", "json"]);
    let metrics_path = temp("table2.prom");
    let trace_path = temp("table2.trace.json");
    let instrumented = stdout_bytes(&[
        "table2",
        "--format",
        "json",
        "--metrics-out",
        metrics_path.to_str().unwrap(),
        "--trace-out",
        trace_path.to_str().unwrap(),
    ]);
    assert_eq!(instrumented, plain, "instrumentation changed table2");
    take(&metrics_path);
    take(&trace_path);
}

/// `--metrics-format` without `--metrics-out` is a usage error at the
/// process boundary.
#[test]
fn metrics_format_without_destination_fails() {
    let out = ethpos_cli(&["table1", "--metrics-format", "prom"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--metrics-format needs"), "stderr: {err}");
}

//! Candidate-evaluation throughput of the attack-search subsystem.
//!
//! Like `mc_throughput` and `state_backend`, the bench is
//! **equality-gated**: before timing anything it asserts that a small
//! search produces byte-identical frontier JSON at 1 and 2 threads (the
//! determinism contract), and that the full-scale horizon evaluation of
//! the alternation corner lands on the paper's Table 3 / Fig. 2
//! semi-active horizon (≈ 7652; discrete ≈ 7657).
//!
//! Timed units:
//!
//! * `evaluate/conflict_dual_1m` — one dual-active candidate at
//!   n = 10⁶ on the cohort backend (early-stops at conflict ≈ 1576);
//! * `evaluate/horizon_alternation_1m` — the most expensive candidate
//!   kind: the full 8192-epoch delay-horizon run;
//! * `search/smoke_grid` — the whole 24-candidate smoke search.

use criterion::{criterion_group, criterion_main, Criterion};
use ethpos_search::{Genome, Objective, SearchSpec};
use std::hint::black_box;

fn gates() {
    // Gate 1: thread-count invariance of a full search.
    let json = |threads: usize| {
        let mut spec = SearchSpec::smoke();
        spec.threads = threads;
        spec.run().to_json()
    };
    assert_eq!(json(1), json(2), "search frontier diverged across threads");

    // Gate 2: the alternation corner's full-scale horizon sits next to
    // the paper's 7652 (the discrete staircase lands at 7657).
    let spec = SearchSpec::new(Objective::NonSlashableHorizon);
    let e = spec.evaluate(Genome::THRESHOLD_SEEKER);
    let horizon = e.horizon.expect("honest branches finalize after ejection");
    assert!(
        (7645..=7670).contains(&horizon),
        "alternation horizon {horizon}, expected ≈ 7652 (paper) / 7657 (discrete)"
    );
}

fn bench(c: &mut Criterion) {
    gates();

    let conflict = SearchSpec::new(Objective::Conflict);
    c.bench_function("attack_search/evaluate/conflict_dual_1m", |b| {
        b.iter(|| black_box(conflict.evaluate(Genome::DUAL_ACTIVE)))
    });

    let horizon = SearchSpec::new(Objective::NonSlashableHorizon);
    c.bench_function("attack_search/evaluate/horizon_alternation_1m", |b| {
        b.iter(|| black_box(horizon.evaluate(Genome::THRESHOLD_SEEKER)))
    });

    let mut g = c.benchmark_group("attack_search/search");
    g.sample_size(10);
    g.bench_function("smoke_grid", |b| {
        b.iter(|| black_box(SearchSpec::smoke().run()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

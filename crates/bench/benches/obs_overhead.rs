//! Observability overhead on the hot epoch loop — the gate behind the
//! cohort path's 1-in-64 stage-timer sampling.
//!
//! The workload is the fig2 single-branch leak at the paper's
//! million-validator population on the cohort backend: epochs cost
//! single-digit microseconds there, so it is the most
//! instrumentation-sensitive loop in the workspace. The bench measures
//! min-of-N wall time with the metrics registry disabled and enabled
//! and **fails** if enabling costs more than 3%.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use ethpos_core::experiments::simulated;
use ethpos_state::BackendKind;
use std::hint::black_box;

const EPOCHS: u64 = 4096;
const N: usize = 1_000_000;
const REPS: usize = 15;
const MAX_OVERHEAD: f64 = 0.03;

fn run_once() -> Duration {
    let start = Instant::now();
    black_box(simulated::fig2_discrete_at(EPOCHS, N, BackendKind::Cohort));
    start.elapsed()
}

/// Minimum wall time over `REPS` runs — the estimator least sensitive
/// to scheduler noise, which is what an overhead gate needs.
fn min_of_n() -> Duration {
    (0..REPS).map(|_| run_once()).min().expect("REPS > 0")
}

fn bench(c: &mut Criterion) {
    // Warm the allocator and caches before either measurement.
    run_once();

    assert!(!ethpos_obs::metrics_enabled(), "stale global flag");
    let disabled = min_of_n();
    ethpos_obs::set_metrics_enabled(true);
    let enabled = min_of_n();
    ethpos_obs::set_metrics_enabled(false);

    let overhead = enabled.as_secs_f64() / disabled.as_secs_f64() - 1.0;
    eprintln!(
        "obs_overhead: fig2 cohort {EPOCHS} epochs x {N} validators — \
         disabled {disabled:?}, enabled {enabled:?}, overhead {:+.2}%",
        overhead * 100.0
    );
    assert!(
        overhead < MAX_OVERHEAD,
        "metrics overhead {:.2}% exceeds the {:.0}% gate",
        overhead * 100.0,
        MAX_OVERHEAD * 100.0
    );

    let mut g = c.benchmark_group("obs_overhead/fig2_cohort");
    g.sample_size(10);
    g.bench_function("metrics_disabled", |b| b.iter(run_once));
    g.bench_function("metrics_enabled", |b| {
        ethpos_obs::set_metrics_enabled(true);
        b.iter(run_once);
        ethpos_obs::set_metrics_enabled(false);
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

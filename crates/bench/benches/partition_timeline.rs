//! Throughput of the k-branch partition engine on the headline
//! scenarios.
//!
//! Gates on dense/cohort report equality at an overlapping size (the
//! exhaustive per-epoch snapshot equality lives in the
//! `backend_equivalence` property tests), then times the full preset
//! suite — a 3-branch semi-active run to the ejection wave plus a
//! heal-then-resplit bounce — at small and spec-scale populations on
//! the cohort backend.

use criterion::{criterion_group, criterion_main, Criterion};
use ethpos_core::partition::PartitionSpec;
use ethpos_state::BackendKind;
use std::hint::black_box;

fn suite(n: usize, backend: BackendKind) -> String {
    PartitionSpec {
        n,
        backend,
        threads: 1,
        ..PartitionSpec::default()
    }
    .run()
    .to_json()
}

fn bench(c: &mut Criterion) {
    // Equality gate at an overlapping size.
    let dense = suite(3000, BackendKind::Dense).replace("\"Dense\"", "\"*\"");
    let cohort = suite(3000, BackendKind::Cohort).replace("\"Cohort\"", "\"*\"");
    assert_eq!(dense, cohort, "backends diverged on the preset suite");
    // Sanity gate: both headline scenarios must actually conflict.
    assert_eq!(cohort.matches("\"conflict_epoch\": null").count(), 0);

    for n in [3_000usize, 1_000_000] {
        let name = format!("partition_timeline/presets_n{n}");
        let mut g = c.benchmark_group(&name);
        g.sample_size(10);
        g.bench_function("cohort", |b| {
            b.iter(|| black_box(suite(n, BackendKind::Cohort)))
        });
        g.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);

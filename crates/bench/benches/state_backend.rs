//! Dense vs cohort epoch throughput across registry sizes.
//!
//! The cohort-compressed backend promises the *same results* as the
//! dense per-validator state in O(#cohorts) instead of O(n) per epoch.
//! This bench first **verifies** snapshot equality on the benched
//! schedule (like `mc_throughput` verifies bit-identity before timing),
//! then times full epoch processing — participation marking + the eight
//! spec epoch steps — on both backends at n = 10³ … 10⁶.
//!
//! The workload is the Figure 2 cohort mix (10% active, 10% semi-active,
//! 80% inactive) under the paper configuration: a persistent inactivity
//! leak, the arithmetic-heaviest regime.

use criterion::{criterion_group, criterion_main, Criterion};
use ethpos_sim::{run_single_branch_on, Behavior};
use ethpos_state::backend::StateBackend;
use ethpos_state::{CohortState, DenseState};
use ethpos_types::ChainConfig;
use std::hint::black_box;

const EPOCHS: u64 = 32;

fn classes(n: u64) -> [(Behavior, u64); 3] {
    [
        (Behavior::Active, n / 10),
        (Behavior::SemiActive, n / 10),
        (Behavior::Inactive, n - 2 * (n / 10)),
    ]
}

fn run<B: StateBackend>(n: u64) -> Vec<u64> {
    run_single_branch_on::<B>(ChainConfig::paper(), &classes(n), EPOCHS)
        .into_iter()
        .map(|t| *t.balance_gwei.last().unwrap())
        .collect()
}

fn bench(c: &mut Criterion) {
    // Equality gate: the benched schedule must produce identical final
    // balances (snapshot equality is covered exhaustively by the
    // `backend_equivalence` property tests).
    let dense = run::<DenseState>(10_000);
    let cohort = run::<CohortState>(10_000);
    assert_eq!(dense, cohort, "backends diverged on the benched schedule");

    for n in [1_000u64, 10_000, 100_000, 1_000_000] {
        let name = format!("state_backend/fig2_mix_{EPOCHS}e_n{n}");
        let mut g = c.benchmark_group(&name);
        g.sample_size(10);
        g.bench_function("dense", |b| b.iter(|| black_box(run::<DenseState>(n))));
        g.bench_function("cohort", |b| b.iter(|| black_box(run::<CohortState>(n))));
        g.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Table 3 — conflicting-finalization epoch under the non-slashable
//! strategy (numerical root of Eq. 10), plus a simulator cross-check.

use criterion::{criterion_group, criterion_main, Criterion};
use ethpos_bench::print_experiment;
use ethpos_core::experiments::{simulated, Experiment};
use ethpos_core::scenarios::semi_active;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    print_experiment(Experiment::Table3NonSlashable);
    let sim = simulated::conflicting_finalization_simulated(0.33, 0.5, 600, false, 800);
    eprintln!("simulated (n = 600, β0 = 0.33, non-slashable): {sim:?}\n");

    c.bench_function("table3/analytic_full_table", |b| {
        b.iter(|| black_box(semi_active::table3()))
    });
    c.bench_function("table3/eq10_brent_root", |b| {
        b.iter(|| {
            black_box(semi_active::two_thirds_epoch(
                black_box(0.5),
                black_box(0.2),
            ))
        })
    });
    let mut g = c.benchmark_group("table3/simulated");
    g.sample_size(10);
    g.bench_function("beta033_n600", |b| {
        b.iter(|| {
            black_box(simulated::conflicting_finalization_simulated(
                0.33, 0.5, 600, false, 800,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Throughput of the count-level churn path (§5.3 bouncing regime).
//!
//! Gates on exact/reference cohort-backend equality at small n — both
//! walk cohorts in canonical order, so they consume identical binomial
//! count streams and must agree byte-for-byte — then times two-branch
//! churn on the cohort backend up to the paper's million-validator
//! population. (The dense backend is only equal in law on churn
//! timelines; its per-validator path is the `state_backend` bench's
//! territory.)

use criterion::{criterion_group, criterion_main, Criterion};
use ethpos_sim::{PartitionConfig, PartitionOutcome, PartitionSim, PartitionTimeline};
use ethpos_state::backend::StateBackend;
use ethpos_state::{CohortState, ReferenceCohortState};
use ethpos_validator::DualActive;
use std::hint::black_box;

fn config(n: usize, epochs: u64) -> PartitionConfig {
    PartitionConfig {
        stop_on_conflict: false,
        stop_on_finalization: false,
        record_every: u64::MAX,
        ..PartitionConfig::paper(n, n / 3, PartitionTimeline::two_branch_churn(0.5), epochs)
    }
}

fn run<B: StateBackend>(n: usize, epochs: u64) -> PartitionOutcome {
    PartitionSim::<B>::with_backend(config(n, epochs), Box::new(DualActive))
        .expect("valid by construction")
        .run()
}

fn bench(c: &mut Criterion) {
    // Equality gate: exact vs reference cohort backend, byte-for-byte.
    let exact = serde_json::to_string(&run::<CohortState>(600, 96)).unwrap();
    let reference = serde_json::to_string(&run::<ReferenceCohortState>(600, 96)).unwrap();
    assert_eq!(exact, reference, "cohort backends diverged under churn");

    let mut g = c.benchmark_group("churn_throughput");
    g.sample_size(10);
    for n in [10_000usize, 1_000_000] {
        g.bench_function(&format!("two_branch_n{n}_256ep"), |b| {
            b.iter(|| black_box(run::<CohortState>(n, 256)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Table 1 — scenario/outcome summary.

use criterion::{criterion_group, criterion_main, Criterion};
use ethpos_bench::print_experiment;
use ethpos_core::experiments::Experiment;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    print_experiment(Experiment::Table1Outcomes);
    c.bench_function("table1/outcomes", |b| {
        b.iter(|| black_box(ethpos_core::scenarios::outcome_table()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Figure 7 — the (p0, β0) region where the Byzantine proportion can
//! exceed 1/3 (Eq. 13).

use criterion::{criterion_group, criterion_main, Criterion};
use ethpos_bench::print_experiment;
use ethpos_core::experiments::Experiment;
use ethpos_core::scenarios::threshold;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    print_experiment(Experiment::Fig7ThresholdRegion);
    eprintln!(
        "paper bound check: min β0 at p0 = 0.5 is {:.4} (paper: 0.2421)\n",
        threshold::min_beta0_for_third(0.5)
    );

    c.bench_function("fig7/grid_100x100", |b| {
        b.iter(|| black_box(threshold::figure7_grid(100, 100)))
    });
    c.bench_function("fig7/beta_max_single", |b| {
        b.iter(|| black_box(threshold::beta_max(black_box(0.5), black_box(0.25))))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

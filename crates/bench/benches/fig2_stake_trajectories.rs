//! Figure 2 — stake trajectories during an inactivity leak.
//!
//! Regenerates the analytic curves (paper §4.3) and the discrete
//! spec-arithmetic trajectories, then benchmarks both generators.

use criterion::{criterion_group, criterion_main, Criterion};
use ethpos_bench::print_experiment;
use ethpos_core::experiments::{simulated, Experiment};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    print_experiment(Experiment::Fig2StakeTrajectories);
    eprintln!("{}", simulated::fig2_discrete(8000).render_text());

    c.bench_function("fig2/analytic_curves", |b| {
        b.iter(|| {
            black_box(ethpos_core::experiments::run_experiment(
                Experiment::Fig2StakeTrajectories,
            ))
        })
    });
    let mut g = c.benchmark_group("fig2/discrete");
    g.sample_size(10);
    g.bench_function("simulate_8000_epochs", |b| {
        b.iter(|| black_box(simulated::fig2_discrete(8000)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

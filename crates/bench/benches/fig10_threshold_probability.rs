//! Figure 10 — P[β > 1/3] over time (Eq. 24), analytic and Monte Carlo.

use criterion::{criterion_group, criterion_main, Criterion};
use ethpos_bench::print_experiment;
use ethpos_core::experiments::{simulated, Experiment, McConfig};
use ethpos_core::scenarios::bouncing;
use ethpos_sim::{run_bouncing_walks, BouncingWalkConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    print_experiment(Experiment::Fig10ThresholdProbability);
    eprintln!(
        "{}",
        simulated::fig10_monte_carlo(
            0.333,
            &McConfig {
                walkers: 10_000,
                epochs: 4001,
                ..McConfig::default()
            }
        )
        .render_text()
    );

    c.bench_function("fig10/analytic_six_curves", |b| {
        b.iter(|| {
            black_box(bouncing::figure10_curves(
                &bouncing::paper_fig10_betas(),
                8000.0,
                20.0,
            ))
        })
    });
    let mut g = c.benchmark_group("fig10/monte_carlo");
    g.sample_size(10);
    g.bench_function("4000_epochs_5k_walkers", |b| {
        b.iter(|| {
            black_box(run_bouncing_walks(&BouncingWalkConfig {
                beta0: 0.333,
                walkers: 5_000,
                epochs: 4001,
                record_every: 1000,
                ..BouncingWalkConfig::default()
            }))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

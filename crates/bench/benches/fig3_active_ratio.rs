//! Figure 3 — ratio of active validators during the leak (Eq. 5).

use criterion::{criterion_group, criterion_main, Criterion};
use ethpos_bench::print_experiment;
use ethpos_core::experiments::Experiment;
use ethpos_core::scenarios::honest;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    print_experiment(Experiment::Fig3ActiveRatio);

    c.bench_function("fig3/series_five_p0", |b| {
        b.iter(|| {
            for p0 in [0.6, 0.5, 0.4, 0.3, 0.2] {
                black_box(honest::figure3_series(black_box(p0), 8000.0, 10.0));
            }
        })
    });
    c.bench_function("fig3/eq5_single_eval", |b| {
        b.iter(|| black_box(honest::active_ratio(black_box(0.4), black_box(2000.0))))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

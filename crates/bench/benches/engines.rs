//! Engine-throughput benchmarks: how fast each simulation level runs,
//! plus an ablation of the paper-vs-spec inactivity-penalty semantics.

use criterion::{criterion_group, criterion_main, Criterion};
use ethpos_sim::{
    run_single_branch, Behavior, SlotSim, SlotSimConfig, TwoBranchConfig, TwoBranchSim,
};
use ethpos_types::ChainConfig;
use ethpos_validator::DualActive;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Slot-level engine: healthy chain throughput.
    let mut g = c.benchmark_group("engines/slot_level");
    g.sample_size(10);
    g.bench_function("healthy_16val_10epochs", |b| {
        b.iter(|| black_box(SlotSim::new(SlotSimConfig::healthy(16, 10 * 8)).run()))
    });
    g.finish();

    // Cohort engine: two branches, 600 validators, 500 epochs.
    let mut g = c.benchmark_group("engines/cohort");
    g.sample_size(10);
    g.bench_function("two_branch_600val_500epochs", |b| {
        b.iter(|| {
            let cfg = TwoBranchConfig {
                stop_on_conflict: false,
                record_every: u64::MAX,
                ..TwoBranchConfig::paper(600, 0, 0.5, 500)
            };
            black_box(TwoBranchSim::new(cfg, Box::new(DualActive)).run())
        })
    });
    g.finish();

    // Ablation: paper vs spec penalty semantics over 2000 epochs.
    let behaviors: Vec<Behavior> = {
        let mut v = vec![Behavior::Active, Behavior::SemiActive, Behavior::Inactive];
        v.extend(std::iter::repeat_n(Behavior::Inactive, 7));
        v
    };
    let paper = run_single_branch(ChainConfig::paper(), &behaviors, 2000);
    let spec = {
        let cfg = ChainConfig {
            base_reward_factor: 0,
            paper_inactivity_penalties: false,
            ..ChainConfig::mainnet()
        };
        run_single_branch(cfg, &behaviors, 2000)
    };
    eprintln!(
        "ablation (semi-active stake at t = 2000): paper-semantics {:.3} ETH, \
         spec-semantics {:.3} ETH, paper model 30.601 ETH",
        paper[1].balance_gwei[2000] as f64 / 1e9,
        spec[1].balance_gwei[2000] as f64 / 1e9,
    );
    let mut g = c.benchmark_group("engines/single_branch");
    g.sample_size(10);
    g.bench_function("leak_10val_2000epochs", |b| {
        b.iter(|| {
            black_box(run_single_branch(
                ChainConfig::paper(),
                black_box(&behaviors),
                2000,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Figure 8 — the bouncing Markov chain's score-transition law (Eq. 15),
//! plus the attack-continuation probability check.

use criterion::{criterion_group, criterion_main, Criterion};
use ethpos_bench::print_experiment;
use ethpos_core::experiments::Experiment;
use ethpos_core::scenarios::bouncing;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    print_experiment(Experiment::Fig8MarkovTransitions);
    eprintln!(
        "continuation to epoch 7000 at β0 = 1/3: 10^{:.1} (paper: 1.01e-121)\n",
        bouncing::continuation_log_prob(1.0 / 3.0, 8, 7000) / std::f64::consts::LN_10
    );

    c.bench_function("fig8/transition_law", |b| {
        b.iter(|| black_box(bouncing::score_transition_two_epochs(black_box(0.5))))
    });
    c.bench_function("fig8/continuation_log_prob", |b| {
        b.iter(|| {
            black_box(bouncing::continuation_log_prob(
                black_box(1.0 / 3.0),
                8,
                7000,
            ))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Figure 6 — time to conflicting finalization vs β0, both strategies.

use criterion::{criterion_group, criterion_main, Criterion};
use ethpos_bench::print_experiment;
use ethpos_core::experiments::Experiment;
use ethpos_core::scenarios::{semi_active, slashing};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    print_experiment(Experiment::Fig6FinalizationTime);

    c.bench_function("fig6/slashable_sweep_67_points", |b| {
        b.iter(|| {
            for i in 0..=66 {
                let beta0 = i as f64 * 0.005;
                black_box(slashing::conflicting_finalization_epoch(0.5, beta0));
            }
        })
    });
    c.bench_function("fig6/non_slashable_sweep_67_points", |b| {
        b.iter(|| {
            for i in 0..=66 {
                let beta0 = i as f64 * 0.005;
                black_box(semi_active::conflicting_finalization_epoch(0.5, beta0));
            }
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

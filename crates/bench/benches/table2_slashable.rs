//! Table 2 — conflicting-finalization epoch under the slashable strategy
//! (Eq. 9), plus a discrete-simulator cross-check row.

use criterion::{criterion_group, criterion_main, Criterion};
use ethpos_bench::print_experiment;
use ethpos_core::experiments::{simulated, Experiment};
use ethpos_core::scenarios::slashing;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    print_experiment(Experiment::Table2Slashable);
    eprintln!(
        "{}",
        simulated::table2_simulated(600, &[0.33]).render_text()
    );

    c.bench_function("table2/analytic_full_table", |b| {
        b.iter(|| black_box(slashing::table2()))
    });
    let mut g = c.benchmark_group("table2/simulated");
    g.sample_size(10);
    g.bench_function("beta033_n600", |b| {
        b.iter(|| {
            black_box(simulated::conflicting_finalization_simulated(
                0.33, 0.5, 600, true, 700,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Figure 9 — the censored stake distribution P̄ at t = 4024
//! (Eq. 20–21).

use criterion::{criterion_group, criterion_main, Criterion};
use ethpos_bench::print_experiment;
use ethpos_core::experiments::Experiment;
use ethpos_core::scenarios::bouncing::BouncingLaw;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    print_experiment(Experiment::Fig9StakeDistribution);

    let law = BouncingLaw::new(0.5);
    c.bench_function("fig9/censored_distribution_512pts", |b| {
        b.iter(|| black_box(law.censored_distribution(black_box(4024.0), 512)))
    });
    c.bench_function("fig9/stake_cdf_single", |b| {
        b.iter(|| black_box(law.stake_cdf(black_box(24.0), black_box(4024.0))))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Monte-Carlo throughput: 1-thread vs N-thread walker sharding.
//!
//! The deterministic parallel harness (`ethpos_sim::ChunkPool` +
//! per-chunk `SeedSequence` child RNGs) promises bit-identical results
//! for any thread count; this bench measures what the extra threads buy.
//! It first *verifies* the bit-identity on the benched configuration,
//! then times `run_bouncing_walks` and `run_two_branch_walks` at one
//! worker and at one-per-hardware-thread.

use criterion::{criterion_group, criterion_main, Criterion};
use ethpos_sim::{
    run_bouncing_walks, run_two_branch_walks, BouncingWalkConfig, ChunkPool, TwoBranchWalkConfig,
};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // The same 0-means-hardware resolution the engines use.
    let n = ChunkPool::new(0).threads();

    let bouncing = |threads: usize| BouncingWalkConfig {
        walkers: 8192,
        epochs: 2000,
        record_every: 500,
        threads,
        ..BouncingWalkConfig::default()
    };
    let one = run_bouncing_walks(&bouncing(1));
    let wide = run_bouncing_walks(&bouncing(n));
    assert_eq!(
        one.final_stakes, wide.final_stakes,
        "thread count changed the Monte Carlo"
    );

    let mut g = c.benchmark_group("mc_throughput/bouncing_8192w_2000e");
    g.sample_size(10);
    g.bench_function("threads_1", |b| {
        b.iter(|| black_box(run_bouncing_walks(&bouncing(1))))
    });
    let wide_id = format!("threads_{n}");
    g.bench_function(&wide_id, |b| {
        b.iter(|| black_box(run_bouncing_walks(&bouncing(n))))
    });
    g.finish();

    let two_branch = |threads: usize| TwoBranchWalkConfig {
        walkers: 8192,
        epochs: 1500,
        threads,
        ..TwoBranchWalkConfig::default()
    };
    let mut g = c.benchmark_group("mc_throughput/two_branch_8192w_1500e");
    g.sample_size(10);
    g.bench_function("threads_1", |b| {
        b.iter(|| black_box(run_two_branch_walks(&two_branch(1))))
    });
    g.bench_function(&wide_id, |b| {
        b.iter(|| black_box(run_two_branch_walks(&two_branch(n))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Shared helpers for the benchmark harness.
//!
//! Every bench target regenerates one table/figure of the paper: it
//! prints the reproduced rows/series once (so `cargo bench` output *is*
//! the reproduction artifact) and then measures the generator with
//! Criterion.

use ethpos_core::experiments::{run_experiment, Experiment, ExperimentOutput};

/// Runs an experiment and prints its rendered output once (used by each
/// bench target before measurement starts).
pub fn print_experiment(experiment: Experiment) -> ExperimentOutput {
    let out = run_experiment(experiment);
    eprintln!("{}", out.render_text());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_experiment_returns_output() {
        let out = print_experiment(Experiment::Table1Outcomes);
        assert_eq!(out.tables.len(), 1);
    }
}

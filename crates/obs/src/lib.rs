//! Workspace-wide observability substrate: a lock-free metrics registry
//! and hierarchical span tracing, with **zero** effect on simulation
//! results.
//!
//! The workspace's determinism contract (see `ARCHITECTURE.md`) pins
//! every report, frontier, and golden document byte-for-byte across
//! thread counts. Instrumentation therefore lives strictly *beside* the
//! simulation: it never touches an RNG stream, never feeds back into
//! control flow, and renders into its own artifacts (`--metrics-out`,
//! `--trace-out`), so a document produced with instrumentation on is
//! byte-identical to one produced with it off.
//!
//! Two halves:
//!
//! * [`metrics`] — atomic counters, gauges and histograms with static
//!   label sets, collected in a [`Registry`]. A process-global default
//!   registry ([`global`]) serves the CLI; per-run registries
//!   ([`Registry::new`]) are plain values every exposition function
//!   accepts, so tests and the future experiment service can inject
//!   their own. Exposition is Prometheus text ([`Registry::render_prometheus`])
//!   or a JSON snapshot ([`Registry::render_json`]).
//! * [`trace`] — RAII hierarchical spans (experiment → stage →
//!   epoch-chunk) with monotonic wall-clock timings, recorded into a
//!   bounded ring buffer and exported in the Chrome trace-event format
//!   ([`Tracer::export_chrome_json`], loadable in `chrome://tracing` /
//!   Perfetto).
//!
//! # Runtime gating
//!
//! Both halves start **disabled**: every instrumentation site first
//! checks [`metrics_enabled`] / [`trace_enabled`] (one relaxed atomic
//! load plus a predicted branch), so an uninstrumented run pays no
//! measurable cost — the `obs_overhead` Criterion bench gates the hot
//! cohort epoch loop. The CLI enables a half only when the matching
//! output flag is present.
//!
//! # Example
//!
//! ```
//! use ethpos_obs::metrics::Registry;
//!
//! let registry = Registry::new();
//! let hits = registry.counter("cache_hits_total", "Cache hits.", &[("tier", "l1")]);
//! hits.add(3);
//! let text = registry.render_prometheus();
//! assert!(text.contains("cache_hits_total{tier=\"l1\"} 3"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod metrics;
pub mod trace;

pub use metrics::{duration_buckets, exponential_buckets, Counter, Gauge, Histogram, Registry};
pub use trace::{Span, TraceEvent, Tracer};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static METRICS_ENABLED: AtomicBool = AtomicBool::new(false);
static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);

/// True when metric recording is on (off by default). Instrumentation
/// sites check this before touching the registry, so a disabled run is
/// one relaxed load per site.
#[inline]
pub fn metrics_enabled() -> bool {
    METRICS_ENABLED.load(Ordering::Relaxed)
}

/// Turns metric recording on or off process-wide.
pub fn set_metrics_enabled(on: bool) {
    METRICS_ENABLED.store(on, Ordering::Relaxed);
}

/// True when span/trace recording is on (off by default).
#[inline]
pub fn trace_enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

/// Turns span/trace recording on or off process-wide.
pub fn set_trace_enabled(on: bool) {
    TRACE_ENABLED.store(on, Ordering::Relaxed);
}

/// The process-global default registry (what the CLI exports). Library
/// code records here; anything that wants an isolated registry builds
/// its own with [`Registry::new`].
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// The process-global tracer (what the CLI exports).
pub fn tracer() -> &'static Tracer {
    static TRACER: OnceLock<Tracer> = OnceLock::new();
    TRACER.get_or_init(Tracer::new)
}

/// Opens a span on the global tracer when tracing is enabled; a no-op
/// guard otherwise. The span closes (and records one Chrome `"X"`
/// complete event) when the guard drops.
///
/// `cat` groups spans in the viewer (`experiment`, `stage`, `chunk`);
/// `name` labels the slice.
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> Span {
    if trace_enabled() {
        tracer().start_span(cat, name.to_string())
    } else {
        Span::disabled()
    }
}

/// [`span`] with a runtime-built name (e.g. a case or scenario label).
/// The name closure only runs when tracing is enabled, so disabled call
/// sites pay no allocation.
#[inline]
pub fn span_with(cat: &'static str, name: impl FnOnce() -> String) -> Span {
    if trace_enabled() {
        tracer().start_span(cat, name())
    } else {
        Span::disabled()
    }
}

/// Records a Chrome `"C"` counter event (a sampled time series the
/// trace viewer plots) on the global tracer when tracing is enabled.
#[inline]
pub fn counter_event(name: &str, values: &[(&str, f64)]) {
    if trace_enabled() {
        tracer().counter_event(name, values);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test covers all process-global flag behaviour: unit tests run
    // in parallel threads, so global toggles must not be spread across
    // test functions.
    #[test]
    fn global_flags_gate_recording() {
        assert!(!metrics_enabled(), "metrics must start disabled");
        assert!(!trace_enabled(), "tracing must start disabled");

        // Disabled spans are inert: nothing reaches the ring buffer.
        let before = tracer().len();
        {
            let _s = span("test", "noop");
            counter_event("noop", &[("v", 1.0)]);
        }
        assert_eq!(tracer().len(), before);

        set_trace_enabled(true);
        {
            let _s = span("test", "recorded");
        }
        set_trace_enabled(false);
        assert_eq!(tracer().len(), before + 1);

        set_metrics_enabled(true);
        assert!(metrics_enabled());
        set_metrics_enabled(false);
        assert!(!metrics_enabled());
    }
}

//! The metrics half: atomic counters, gauges and histograms collected
//! in a [`Registry`], rendered as Prometheus text exposition or a JSON
//! snapshot.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`s returned
//! by the registry's get-or-create methods; recording is lock-free
//! (relaxed atomics, CAS bit-loop for the histogram's f64 sum). The
//! registry itself takes a mutex only on handle *creation* and on
//! rendering — hot paths look a handle up once and then never touch the
//! lock, so the cost of an observation is a few uncontended atomic RMWs.
//!
//! Label sets are static per series: a series is keyed by
//! `(name, sorted label pairs)`, values owned (branch ids and verdict
//! strings are runtime values). Registering the same name with a
//! different metric kind or histogram bucketing panics — that is a
//! programming error, not a runtime condition.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing integer counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A settable floating-point gauge (f64 bits in an `AtomicU64`).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Sets the gauge to `max(current, v)` (a high-water mark).
    pub fn set_max(&self, v: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A histogram over fixed bucket upper bounds (a `+Inf` bucket is
/// implicit), with an f64 sum maintained by a CAS bit-loop.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One slot per finite bound plus the `+Inf` overflow slot.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Records a duration in seconds.
    #[inline]
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// The finite bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Non-cumulative per-bucket counts (last slot is `+Inf`).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// Exponential bucket bounds: `count` values starting at `start`,
/// multiplied by `factor` each step (the usual latency-histogram
/// layout).
///
/// # Panics
///
/// Panics unless `start > 0`, `factor > 1` and `count ≥ 1`.
pub fn exponential_buckets(start: f64, factor: f64, count: usize) -> Vec<f64> {
    assert!(start > 0.0 && factor > 1.0 && count >= 1);
    let mut v = Vec::with_capacity(count);
    let mut b = start;
    for _ in 0..count {
        v.push(b);
        b *= factor;
    }
    v
}

/// The default duration bucketing used by the workspace's
/// `*_seconds` histograms: 1 µs to ~67 s in 4× steps (long chaos cases
/// land in the top buckets; anything slower overflows to `+Inf`).
pub fn duration_buckets() -> Vec<f64> {
    exponential_buckets(1e-6, 4.0, 14)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug)]
enum Series {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

type LabelSet = Vec<(String, String)>;

#[derive(Debug)]
struct Family {
    help: String,
    kind: Kind,
    series: BTreeMap<LabelSet, Series>,
}

/// A collection of metric families. Cheap to clone (shared interior);
/// [`crate::global`] holds the process default, `Registry::new` gives
/// an isolated one (per-run injection, unit tests).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    families: Arc<Mutex<BTreeMap<String, Family>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Locks the family map, recovering from a poisoned mutex. A panic
    /// on another thread mid-registration (a kind conflict, a bad
    /// histogram bucketing, a dying job thread) must not take every
    /// later scrape down with it — a resident server keeps serving
    /// `/metrics` after a worker dies. Recovery is sound because every
    /// mutation under this lock is a single map-entry insertion: the
    /// map is structurally consistent at every panic site.
    fn lock_families(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Family>> {
        self.families.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn series<T>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: Kind,
        make: impl FnOnce() -> Series,
        pick: impl FnOnce(&Series) -> Option<Arc<T>>,
    ) -> Arc<T> {
        let mut sorted: LabelSet = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        sorted.sort();
        let mut families = self.lock_families();
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name} already registered as a {}",
            family.kind.as_str()
        );
        let series = family.series.entry(sorted).or_insert_with(make);
        pick(series).unwrap_or_else(|| unreachable!("kind checked above"))
    }

    /// Gets or creates the counter `name{labels}`.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.series(
            name,
            help,
            labels,
            Kind::Counter,
            || Series::Counter(Arc::new(Counter::default())),
            |s| match s {
                Series::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// Gets or creates the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.series(
            name,
            help,
            labels,
            Kind::Gauge,
            || Series::Gauge(Arc::new(Gauge::default())),
            |s| match s {
                Series::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// Gets or creates the histogram `name{labels}` with the given
    /// finite bucket bounds (ignored when the series already exists —
    /// bucketing is fixed at creation).
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Arc<Histogram> {
        self.series(
            name,
            help,
            labels,
            Kind::Histogram,
            || Series::Histogram(Arc::new(Histogram::new(bounds))),
            |s| match s {
                Series::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// True when no metric family has been registered.
    pub fn is_empty(&self) -> bool {
        self.lock_families().is_empty()
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (`# HELP` / `# TYPE` headers, one sample per line, histograms as
    /// cumulative `_bucket{le=...}` plus `_sum` / `_count`).
    pub fn render_prometheus(&self) -> String {
        let families = self.lock_families();
        let mut out = String::new();
        for (name, family) in families.iter() {
            let _ = writeln!(out, "# HELP {name} {}", family.help.replace('\n', " "));
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.as_str());
            for (labels, series) in &family.series {
                match series {
                    Series::Counter(c) => {
                        let _ = writeln!(out, "{name}{} {}", prom_labels(labels, None), c.get());
                    }
                    Series::Gauge(g) => {
                        let _ = writeln!(
                            out,
                            "{name}{} {}",
                            prom_labels(labels, None),
                            fmt_f64(g.get())
                        );
                    }
                    Series::Histogram(h) => {
                        let counts = h.bucket_counts();
                        let mut cum = 0u64;
                        for (i, c) in counts.iter().enumerate() {
                            cum += c;
                            let le = h
                                .bounds()
                                .get(i)
                                .map(|&b| fmt_f64(b))
                                .unwrap_or_else(|| "+Inf".into());
                            let _ = writeln!(
                                out,
                                "{name}_bucket{} {cum}",
                                prom_labels(labels, Some(&le))
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{name}_sum{} {}",
                            prom_labels(labels, None),
                            fmt_f64(h.sum())
                        );
                        let _ = writeln!(out, "{name}_count{} {}", prom_labels(labels, None), cum);
                    }
                }
            }
        }
        out
    }

    /// Renders the registry as a JSON snapshot: an object with one
    /// `metrics` array of `{name, kind, help, series}` entries, each
    /// series carrying its labels and value(s).
    pub fn render_json(&self) -> String {
        let families = self.lock_families();
        let mut out = String::from("{\n  \"metrics\": [");
        let mut first_family = true;
        for (name, family) in families.iter() {
            if !first_family {
                out.push(',');
            }
            first_family = false;
            let _ = write!(
                out,
                "\n    {{\"name\": {}, \"kind\": \"{}\", \"help\": {}, \"series\": [",
                json_str(name),
                family.kind.as_str(),
                json_str(&family.help)
            );
            let mut first_series = true;
            for (labels, series) in &family.series {
                if !first_series {
                    out.push_str(", ");
                }
                first_series = false;
                out.push_str("{\"labels\": {");
                for (i, (k, v)) in labels.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{}: {}", json_str(k), json_str(v));
                }
                out.push('}');
                match series {
                    Series::Counter(c) => {
                        let _ = write!(out, ", \"value\": {}", c.get());
                    }
                    Series::Gauge(g) => {
                        let _ = write!(out, ", \"value\": {}", json_f64(g.get()));
                    }
                    Series::Histogram(h) => {
                        let _ = write!(
                            out,
                            ", \"count\": {}, \"sum\": {}, \"buckets\": [",
                            h.count(),
                            json_f64(h.sum())
                        );
                        let counts = h.bucket_counts();
                        for (i, c) in counts.iter().enumerate() {
                            if i > 0 {
                                out.push_str(", ");
                            }
                            let le = h
                                .bounds()
                                .get(i)
                                .map(|&b| json_f64(b))
                                .unwrap_or_else(|| "\"+Inf\"".into());
                            let _ = write!(out, "{{\"le\": {le}, \"count\": {c}}}");
                        }
                        out.push(']');
                    }
                }
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Formats a label set as `{k="v",...}` (empty string when no labels),
/// with an optional extra `le` label (histogram buckets).
fn prom_labels(labels: &LabelSet, le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", prom_escape(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

/// Escapes a label value per the exposition format (`\`, `"`, newline).
fn prom_escape(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders a finite f64 the Prometheus way: integral values without a
/// fraction, everything else via Rust's shortest round-trip `Display`.
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// A JSON number for `v` (JSON has no NaN/Inf — those become `null`,
/// which no workspace metric produces in practice).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        fmt_f64(v)
    } else {
        "null".into()
    }
}

/// A JSON string literal for `s`.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("reqs_total", "Requests.", &[]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // The same (name, labels) returns the same underlying series.
        assert_eq!(r.counter("reqs_total", "Requests.", &[]).get(), 5);

        let g = r.gauge("depth", "Depth.", &[("q", "main")]);
        g.set(2.5);
        g.set_max(1.0); // lower: no effect
        assert_eq!(g.get(), 2.5);
        g.set_max(7.0);
        assert_eq!(g.get(), 7.0);
    }

    #[test]
    fn label_order_is_canonical() {
        let r = Registry::new();
        let a = r.counter("x_total", "X.", &[("b", "2"), ("a", "1")]);
        let b = r.counter("x_total", "X.", &[("a", "1"), ("b", "2")]);
        a.inc();
        assert_eq!(b.get(), 1, "differently-ordered labels are one series");
        let text = r.render_prometheus();
        assert!(text.contains("x_total{a=\"1\",b=\"2\"} 1"), "{text}");
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter("esc_total", "E.", &[("k", "a\"b\\c\nd")]).inc();
        let text = r.render_prometheus();
        assert!(text.contains("k=\"a\\\"b\\\\c\\nd\""), "{text}");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflict_panics() {
        let r = Registry::new();
        r.counter("dual", "D.", &[]);
        r.gauge("dual", "D.", &[]);
    }

    #[test]
    fn histogram_bucketing() {
        let h = Histogram::new(&[0.1, 1.0, 10.0]);
        for v in [0.05, 0.1, 0.5, 2.0, 100.0] {
            h.observe(v);
        }
        // 0.05 and 0.1 land in le=0.1 (bounds are inclusive); 0.5 in
        // le=1; 2.0 in le=10; 100.0 overflows to +Inf.
        assert_eq!(h.bucket_counts(), vec![2, 1, 1, 1]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 102.65).abs() < 1e-9);
    }

    #[test]
    fn histogram_prometheus_is_cumulative() {
        let r = Registry::new();
        let h = r.histogram("lat_seconds", "Latency.", &[], &[0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(5.0);
        let text = r.render_prometheus();
        assert!(text.contains("lat_seconds_bucket{le=\"0.1\"} 1"), "{text}");
        assert!(text.contains("lat_seconds_bucket{le=\"1\"} 2"), "{text}");
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("lat_seconds_count 3"), "{text}");
        assert!(text.contains("# TYPE lat_seconds histogram"), "{text}");
    }

    #[test]
    fn exponential_buckets_shape() {
        assert_eq!(exponential_buckets(1.0, 2.0, 4), vec![1.0, 2.0, 4.0, 8.0]);
        let d = duration_buckets();
        assert_eq!(d.len(), 14);
        assert!(d[0] == 1e-6 && d[13] > 60.0);
    }

    #[test]
    fn json_snapshot_is_valid_json() {
        let r = Registry::new();
        r.counter("a_total", "A \"quoted\" help.", &[("l", "v")])
            .add(3);
        r.gauge("b", "B.", &[]).set(1.5);
        r.histogram("c_seconds", "C.", &[], &[0.001, 0.1])
            .observe(0.01);
        let json = r.render_json();
        let parsed: serde_json::Value = serde_json::from_str(&json)
            .unwrap_or_else(|e| panic!("snapshot must parse: {e}\n{json}"));
        let metrics = parsed
            .get("metrics")
            .and_then(|m| m.as_array())
            .expect("metrics array");
        assert_eq!(metrics.len(), 3);
        let field = |i: usize, k: &str| metrics[i].get(k).cloned().expect(k);
        assert_eq!(field(0, "name").as_str(), Some("a_total"));
        let series0 = field(0, "series").get_index(0).cloned().expect("series");
        assert_eq!(series0.get("value").and_then(|v| v.as_u64()), Some(3));
        let series2 = field(2, "series").get_index(0).cloned().expect("series");
        assert_eq!(series2.get("count").and_then(|v| v.as_u64()), Some(1));
    }

    /// A panic raised while the registry lock is held (here: a bad
    /// histogram bucketing inside the get-or-create closure) poisons
    /// the mutex. A resident process scrapes `/metrics` long after any
    /// individual worker dies, so the registry must recover: later
    /// registrations, renders, and `is_empty` all keep working.
    #[test]
    fn registry_survives_a_poisoning_panic() {
        let r = Registry::new();
        r.counter("pre_total", "Registered before the panic.", &[])
            .inc();
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // Decreasing bounds: `Histogram::new` asserts inside
            // `or_insert_with` with the families guard alive.
            r.histogram("bad_seconds", "Bad bucketing.", &[], &[2.0, 1.0]);
        }));
        assert!(panicked.is_err(), "bad bucketing must still panic");
        r.counter("post_total", "Registered after the panic.", &[])
            .add(2);
        assert!(!r.is_empty());
        let text = r.render_prometheus();
        assert!(text.contains("pre_total 1"), "{text}");
        assert!(text.contains("post_total 2"), "{text}");
        let json = r.render_json();
        let parsed: serde_json::Value =
            serde_json::from_str(&json).expect("snapshot parses after poison recovery");
        assert!(parsed.get("metrics").is_some());
    }

    #[test]
    fn concurrent_observations_are_all_counted() {
        let r = Registry::new();
        let c = r.counter("par_total", "P.", &[]);
        let h = r.histogram("par_seconds", "P.", &[], &duration_buckets());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.observe(1e-6 * (i % 7 + 1) as f64);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        assert_eq!(h.count(), 8000);
        let expect: f64 = 8.0 * (0..1000).map(|i| 1e-6 * (i % 7 + 1) as f64).sum::<f64>();
        assert!((h.sum() - expect).abs() < 1e-9, "{} vs {expect}", h.sum());
    }
}

//! The tracing half: RAII hierarchical spans recorded into a bounded
//! ring buffer and exported in the Chrome trace-event format.
//!
//! A [`Span`] measures one slice of wall-clock work (monotonic
//! [`Instant`] timings, microsecond resolution). Spans nest naturally —
//! the viewer stacks same-thread slices by their `ts`/`dur` intervals,
//! and each event additionally carries its thread-local nesting `depth`
//! so well-formedness is testable without a viewer. Counter events
//! (`ph: "C"`) record sampled time series (the cohort-fragmentation
//! gauges) that Perfetto plots as stacked area charts.
//!
//! The buffer is bounded ([`Tracer::CAPACITY`] events): once full, new
//! events are dropped and counted, so a runaway trace costs memory
//! proportional to the cap, never the run length. Export
//! ([`Tracer::export_chrome_json`]) produces a single JSON object
//! loadable in `chrome://tracing` or <https://ui.perfetto.dev>.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Sequential per-thread ids (std's `ThreadId` has no stable integer
/// form), assigned on each thread's first trace event.
fn current_tid() -> u64 {
    static NEXT_TID: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

thread_local! {
    /// Current span nesting depth on this thread.
    static DEPTH: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// One recorded trace event (Chrome trace-event model).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Slice or series name.
    pub name: String,
    /// Category (`experiment`, `stage`, `chunk`, ...).
    pub cat: &'static str,
    /// Phase: `'X'` complete slice, `'C'` counter sample.
    pub ph: char,
    /// Start, µs since the tracer's epoch.
    pub ts_us: u64,
    /// Duration in µs (complete slices only).
    pub dur_us: u64,
    /// Recording thread.
    pub tid: u64,
    /// Event arguments: nesting depth for slices, series values for
    /// counters.
    pub args: Vec<(String, f64)>,
}

/// The bounded event recorder. One process-global instance lives behind
/// [`crate::tracer`]; tests build their own with [`Tracer::new`].
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    events: Mutex<Vec<TraceEvent>>,
    dropped: AtomicU64,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// Ring-buffer bound: enough for every span of the headline
    /// million-validator timeline runs (a 6000-epoch, 5-stage partition
    /// records ~30k slices) with 4× headroom.
    pub const CAPACITY: usize = 1 << 17;

    /// An empty tracer anchored at "now".
    pub fn new() -> Self {
        Tracer {
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Microseconds since this tracer's epoch.
    #[inline]
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Opens a span: the returned guard records one `'X'` complete
    /// event when dropped. Callers normally go through [`crate::span`],
    /// which checks the global enable flag first.
    pub fn start_span(&'static self, cat: &'static str, name: String) -> Span {
        DEPTH.with(|d| d.set(d.get() + 1));
        Span {
            tracer: Some(self),
            cat,
            name,
            start_us: self.now_us(),
        }
    }

    /// Records a counter sample (`ph: 'C'`): one named series with one
    /// or more values, plotted over time by the viewer.
    pub fn counter_event(&self, name: &str, values: &[(&str, f64)]) {
        self.push(TraceEvent {
            name: name.to_string(),
            cat: "counter",
            ph: 'C',
            ts_us: self.now_us(),
            dur_us: 0,
            tid: current_tid(),
            args: values.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        });
    }

    /// Locks the event buffer, recovering from a poisoned mutex: a
    /// panicking span holder on a worker thread must not silence the
    /// tracer for the rest of a resident process (same rationale as
    /// `Registry::lock_families`; every mutation is a single push or
    /// clear, so the buffer stays consistent under poison).
    fn lock_events(&self) -> std::sync::MutexGuard<'_, Vec<TraceEvent>> {
        self.events.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn push(&self, event: TraceEvent) {
        let mut events = self.lock_events();
        if events.len() < Self::CAPACITY {
            events.push(event);
        } else {
            drop(events);
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.lock_events().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Clears the buffer (tests; a long-lived server would export then
    /// clear between runs).
    pub fn clear(&self) {
        self.lock_events().clear();
        self.dropped.store(0, Ordering::Relaxed);
    }

    /// A snapshot of the buffered events.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.lock_events().clone()
    }

    /// Exports the buffer as Chrome trace JSON: one `traceEvents` array
    /// of complete/counter events (one per line, stable order), loadable
    /// in `chrome://tracing` and Perfetto.
    pub fn export_chrome_json(&self) -> String {
        let events = self.lock_events();
        let mut out = String::from("{\"traceEvents\": [\n");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let _ = write!(
                out,
                "{{\"name\": {}, \"cat\": \"{}\", \"ph\": \"{}\", \"ts\": {}, ",
                json_str(&e.name),
                e.cat,
                e.ph,
                e.ts_us
            );
            if e.ph == 'X' {
                let _ = write!(out, "\"dur\": {}, ", e.dur_us);
            }
            let _ = write!(out, "\"pid\": 1, \"tid\": {}, \"args\": {{", e.tid);
            for (j, (k, v)) in e.args.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{}: {}", json_str(k), fmt_json_f64(*v));
            }
            out.push_str("}}");
        }
        let _ = write!(
            out,
            "\n], \"displayTimeUnit\": \"ms\", \"otherData\": {{\"dropped_events\": {}}}}}\n",
            self.dropped()
        );
        out
    }
}

/// RAII span guard: records one complete event on drop. Inert when
/// built via [`Span::disabled`] (tracing off).
#[derive(Debug)]
#[must_use = "a span measures the scope it lives in"]
pub struct Span {
    tracer: Option<&'static Tracer>,
    cat: &'static str,
    name: String,
    start_us: u64,
}

impl Span {
    /// The no-op span handed out while tracing is disabled.
    pub fn disabled() -> Span {
        Span {
            tracer: None,
            cat: "",
            name: String::new(),
            start_us: 0,
        }
    }

    /// True when this span will record an event on drop.
    pub fn is_recording(&self) -> bool {
        self.tracer.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(tracer) = self.tracer else { return };
        let depth = DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth - 1);
            depth
        });
        let end = tracer.now_us();
        tracer.push(TraceEvent {
            name: std::mem::take(&mut self.name),
            cat: self.cat,
            ph: 'X',
            ts_us: self.start_us,
            dur_us: end.saturating_sub(self.start_us),
            tid: current_tid(),
            args: vec![("depth".to_string(), depth as f64)],
        });
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn fmt_json_f64(v: f64) -> String {
    if !v.is_finite() {
        "null".into()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaked() -> &'static Tracer {
        Box::leak(Box::new(Tracer::new()))
    }

    #[test]
    fn spans_nest_and_record_depth() {
        let t = leaked();
        {
            let _outer = t.start_span("stage", "outer".into());
            {
                let _inner = t.start_span("stage", "inner".into());
            }
        }
        let events = t.events();
        assert_eq!(events.len(), 2);
        // Inner drops first (deeper), outer second.
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[0].args, vec![("depth".to_string(), 2.0)]);
        assert_eq!(events[1].name, "outer");
        assert_eq!(events[1].args, vec![("depth".to_string(), 1.0)]);
        // The outer interval contains the inner one.
        assert!(events[1].ts_us <= events[0].ts_us);
        assert!(
            events[1].ts_us + events[1].dur_us >= events[0].ts_us + events[0].dur_us,
            "outer must cover inner"
        );
        assert_eq!(events[0].tid, events[1].tid);
    }

    #[test]
    fn counter_events_carry_values() {
        let t = leaked();
        t.counter_event("cohorts", &[("branch0", 42.0), ("branch1", 7.5)]);
        let events = t.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].ph, 'C');
        assert_eq!(events[0].args[0], ("branch0".to_string(), 42.0));
        assert_eq!(events[0].args[1], ("branch1".to_string(), 7.5));
    }

    #[test]
    fn export_is_valid_chrome_trace_json() {
        let t = leaked();
        {
            let _s = t.start_span("experiment", "run \"quoted\"".into());
            t.counter_event("series", &[("v", 1.25)]);
        }
        let json = t.export_chrome_json();
        let parsed: serde_json::Value =
            serde_json::from_str(&json).unwrap_or_else(|e| panic!("trace must parse: {e}\n{json}"));
        let events = parsed
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents");
        assert_eq!(events.len(), 2);
        for e in events {
            // Chrome's loader requires these fields on every event.
            assert!(e.get("name").and_then(|v| v.as_str()).is_some());
            assert!(e.get("ph").and_then(|v| v.as_str()).is_some());
            for key in ["ts", "pid", "tid"] {
                assert!(e.get(key).and_then(|v| v.as_u64()).is_some(), "{key}");
            }
        }
        let slice = events
            .iter()
            .find(|e| e.get("ph").and_then(|v| v.as_str()) == Some("X"))
            .expect("complete event");
        assert!(slice.get("dur").and_then(|v| v.as_u64()).is_some());
        assert_eq!(
            slice.get("name").and_then(|v| v.as_str()),
            Some("run \"quoted\"")
        );
        let dropped = parsed
            .get("otherData")
            .and_then(|o| o.get("dropped_events"))
            .and_then(|v| v.as_u64());
        assert_eq!(dropped, Some(0));
    }

    #[test]
    fn buffer_bounds_and_drop_counting() {
        let t = Tracer::new();
        for i in 0..(Tracer::CAPACITY + 5) {
            t.counter_event("x", &[("v", i as f64)]);
        }
        assert_eq!(t.len(), Tracer::CAPACITY);
        assert_eq!(t.dropped(), 5);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn disabled_span_records_nothing() {
        let s = Span::disabled();
        assert!(!s.is_recording());
        drop(s);
    }
}

//! Gauss error function and normal CDF/PDF.
//!
//! `erf` is required by the paper's Eq. 19 (the CDF of the log-normal
//! stake law under the probabilistic bouncing attack). The implementation
//! uses the Chebyshev-fitted rational approximation of `erfc` (Numerical
//! Recipes §6.2), whose relative error is below `1.2 × 10⁻⁷` everywhere —
//! far below every tolerance used in the reproduction.

use core::f64::consts::SQRT_2;

/// Complementary error function `erfc(x) = 1 − erf(x)`.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 2.0 / (2.0 + z);
    let ty = 4.0 * t - 2.0;

    // Chebyshev coefficients (Numerical Recipes, 3rd ed., erfc_chebyshev).
    const COF: [f64; 28] = [
        -1.3026537197817094,
        6.419_697_923_564_902e-1,
        1.9476473204185836e-2,
        -9.561_514_786_808_63e-3,
        -9.46595344482036e-4,
        3.66839497852761e-4,
        4.2523324806907e-5,
        -2.0278578112534e-5,
        -1.624290004647e-6,
        1.303655835580e-6,
        1.5626441722e-8,
        -8.5238095915e-8,
        6.529054439e-9,
        5.059343495e-9,
        -9.91364156e-10,
        -2.27365122e-10,
        9.6467911e-11,
        2.394038e-12,
        -6.886027e-12,
        8.94487e-13,
        3.13092e-13,
        -1.12708e-13,
        3.81e-16,
        7.106e-15,
        -1.523e-15,
        -9.4e-17,
        1.21e-16,
        -2.8e-17,
    ];

    let mut d = 0.0f64;
    let mut dd = 0.0f64;
    for &c in COF.iter().rev().take(COF.len() - 1) {
        let tmp = d;
        d = ty * d - dd + c;
        dd = tmp;
    }
    let ans = t * (-z * z + 0.5 * (COF[0] + ty * d) - dd).exp();

    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Error function `erf(x)`.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Standard normal cumulative distribution function Φ(x).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / SQRT_2)
}

/// Standard normal probability density function φ(x).
pub fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * core::f64::consts::PI).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Reference values computed with mpmath at 50 digits.
    const REFS: &[(f64, f64)] = &[
        (0.0, 0.0),
        (0.1, 0.1124629160182849),
        (0.5, 0.5204998778130465),
        (1.0, 0.8427007929497149),
        (1.5, 0.9661051464753107),
        (2.0, 0.9953222650189527),
        (3.0, 0.9999779095030014),
        (-1.0, -0.8427007929497149),
        (-2.5, -0.999593047982555),
    ];

    #[test]
    fn erf_matches_reference_values() {
        for &(x, want) in REFS {
            let got = erf(x);
            assert!((got - want).abs() < 5e-8, "erf({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn erfc_complements_erf() {
        for x in [-3.0, -1.0, 0.0, 0.3, 1.7, 4.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn normal_cdf_key_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((normal_cdf(1.959_963_984_540_054) - 0.975).abs() < 1e-7);
        assert!((normal_cdf(-1.959_963_984_540_054) - 0.025).abs() < 1e-7);
        assert!(normal_cdf(8.0) > 0.999_999_99);
        assert!(normal_cdf(-8.0) < 1e-8);
    }

    #[test]
    fn normal_pdf_is_symmetric_and_normalized_at_zero() {
        assert!((normal_pdf(0.0) - 0.398_942_280_401_432_7).abs() < 1e-12);
        assert!((normal_pdf(1.3) - normal_pdf(-1.3)).abs() < 1e-15);
    }

    proptest! {
        #[test]
        fn prop_erf_is_odd(x in -5.0f64..5.0) {
            prop_assert!((erf(x) + erf(-x)).abs() < 1e-9);
        }

        #[test]
        fn prop_erf_monotone(a in -5.0f64..5.0, d in 1e-3f64..1.0) {
            prop_assert!(erf(a + d) > erf(a));
        }

        #[test]
        fn prop_cdf_in_unit_interval(x in -40.0f64..40.0) {
            let p = normal_cdf(x);
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }
}

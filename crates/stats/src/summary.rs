//! Online summary statistics (Welford) and quantiles for Monte-Carlo runs.

/// Accumulates count/mean/variance online (Welford's algorithm) and
/// min/max, without storing samples.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 if fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn sd(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Standard error of the mean.
    pub fn sem(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sd() / (self.n as f64).sqrt()
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of a slice, interpolating linearly;
/// the slice is sorted in place.
///
/// # Panics
///
/// Panics on an empty slice or `q` outside `[0, 1]`.
pub fn quantile_mut(samples: &mut [f64], q: f64) -> f64 {
    assert!(!samples.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "q must be in [0,1]");
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
    let idx = q * (samples.len() - 1) as f64;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    let frac = idx - lo as f64;
    samples[lo] * (1.0 - frac) + samples[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn summary_basic_moments() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_summary_defaults() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        for &x in &data {
            whole.add(x);
        }
        let mut left = Summary::new();
        let mut right = Summary::new();
        for &x in &data[..37] {
            left.add(x);
        }
        for &x in &data[37..] {
            right.add(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn quantiles() {
        let mut v = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile_mut(&mut v, 0.0), 1.0);
        assert_eq!(quantile_mut(&mut v, 0.5), 3.0);
        assert_eq!(quantile_mut(&mut v, 1.0), 5.0);
        assert_eq!(quantile_mut(&mut v, 0.25), 2.0);
    }

    proptest! {
        #[test]
        fn prop_mean_within_min_max(data in proptest::collection::vec(-100.0f64..100.0, 1..50)) {
            let mut s = Summary::new();
            for &x in &data { s.add(x); }
            prop_assert!(s.mean() >= s.min() - 1e-9);
            prop_assert!(s.mean() <= s.max() + 1e-9);
        }
    }
}

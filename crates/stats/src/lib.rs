//! Self-contained numerics used by the paper's analytical model.
//!
//! The paper's §5.3 analysis needs the Gauss error function, normal and
//! log-normal laws, and numerical root finding for Eq. 10; this crate
//! provides them without external math dependencies, plus quadrature and
//! online summary statistics for the Monte-Carlo cross-checks.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod binomial;
pub mod distributions;
pub mod erf;
pub mod quadrature;
pub mod rng;
pub mod rootfind;
pub mod seedseq;
pub mod summary;

pub use binomial::{conditional_probabilities, Binomial, Multinomial};
pub use distributions::{LogNormal, Normal};
pub use erf::{erf, erfc, normal_cdf, normal_pdf};
pub use quadrature::integrate_simpson;
pub use rng::seeded_rng;
pub use rootfind::{bisect, brent, RootError};
pub use seedseq::SeedSequence;
pub use summary::Summary;

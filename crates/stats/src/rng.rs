//! Seeded random number generation.
//!
//! Every stochastic component of the workspace (proposer lotteries,
//! Monte-Carlo walks) takes an explicit seed so experiments reproduce
//! bit-for-bit.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates a deterministic RNG from a `u64` seed.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded_rng(123);
        let mut b = seeded_rng(123);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }
}

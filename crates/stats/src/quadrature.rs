//! Numerical integration (composite Simpson).
//!
//! Used to integrate the censored stake distribution of paper Eq. 20–22
//! and in tests that verify densities integrate to one.

/// Integrates `f` over `[a, b]` with composite Simpson's rule on `n`
/// sub-intervals (`n` is rounded up to the next even number).
///
/// # Panics
///
/// Panics if `n == 0` or the bounds are not finite.
pub fn integrate_simpson<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, n: usize) -> f64 {
    assert!(n > 0, "need at least one sub-interval");
    assert!(a.is_finite() && b.is_finite(), "bounds must be finite");
    let n = if n.is_multiple_of(2) { n } else { n + 1 };
    let h = (b - a) / n as f64;
    let mut acc = f(a) + f(b);
    for i in 1..n {
        let x = a + i as f64 * h;
        acc += if i % 2 == 0 { 2.0 } else { 4.0 } * f(x);
    }
    acc * h / 3.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrates_polynomial_exactly() {
        // Simpson is exact for cubics.
        let i = integrate_simpson(|x| x * x * x - 2.0 * x + 1.0, 0.0, 2.0, 2);
        assert!((i - 2.0).abs() < 1e-12); // ∫₀² (x³−2x+1) dx = 4−4+2 = 2
    }

    #[test]
    fn integrates_sine() {
        let i = integrate_simpson(f64::sin, 0.0, core::f64::consts::PI, 1000);
        assert!((i - 2.0).abs() < 1e-9);
    }

    #[test]
    fn odd_n_is_rounded_up() {
        let even = integrate_simpson(f64::exp, 0.0, 1.0, 100);
        let odd = integrate_simpson(f64::exp, 0.0, 1.0, 99);
        assert!((even - odd).abs() < 1e-12);
    }

    #[test]
    fn reversed_bounds_negate() {
        let fwd = integrate_simpson(|x| x, 0.0, 1.0, 10);
        let rev = integrate_simpson(|x| x, 1.0, 0.0, 10);
        assert!((fwd + rev).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_subintervals_panics() {
        let _ = integrate_simpson(|x| x, 0.0, 1.0, 0);
    }
}

//! Counter-based seed streams for deterministic parallel execution.
//!
//! A [`SeedSequence`] turns one root seed into arbitrarily many
//! **independent child seeds** (and RNGs). A child is a pure function of
//! the root key and the child's index — *not* of how many siblings were
//! spawned before it — so work can be sharded across any number of
//! threads, claimed in any order, and still consume exactly the same
//! random streams. This is the property that makes the workspace's
//! Monte-Carlo results bit-identical for any `--threads` value (see
//! `ARCHITECTURE.md`, "The determinism model").
//!
//! The construction is counter-based in the spirit of NumPy's
//! `SeedSequence` / Philox: `child(i)`'s seed is a SplitMix64-style
//! avalanche hash of `(key, i)`. SplitMix64's finalizer is a bijection on
//! `u64` with full avalanche, so distinct indices can never collide for a
//! fixed key, and nearby indices produce statistically unrelated seeds.
//! Children are themselves sequences, so a tree of tasks (experiment →
//! grid point → walker chunk) gets its own independent subtree of
//! streams.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 finalizer: a full-avalanche bijection on `u64`.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The golden-ratio increment used by SplitMix64 to decorrelate
/// consecutive counters before mixing.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// A deterministic, order-insensitive stream of child seeds.
///
/// # Example
///
/// Children depend only on their index, never on spawn order:
///
/// ```
/// use ethpos_stats::SeedSequence;
///
/// let seq = SeedSequence::new(42);
/// let late_first = seq.child_seed(7);
/// let _ = seq.child_seed(0); // spawning other children changes nothing
/// assert_eq!(seq.child_seed(7), late_first);
///
/// // Children spawn independent grandchildren (a tree of streams).
/// let chunk = seq.child(3);
/// assert_ne!(chunk.child_seed(0), seq.child_seed(0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    key: u64,
}

impl SeedSequence {
    /// Creates the root sequence for `root_seed`.
    ///
    /// The root seed is pre-mixed so that structured user seeds
    /// (0, 1, 2, …) land on unrelated keys.
    pub fn new(root_seed: u64) -> Self {
        SeedSequence {
            key: mix64(root_seed.wrapping_add(GOLDEN)),
        }
    }

    /// The seed of child `index` — a pure function of `(key, index)`.
    pub fn child_seed(&self, index: u64) -> u64 {
        mix64(self.key ^ mix64(index.wrapping_add(GOLDEN)))
    }

    /// Child `index` as a sequence of its own, for nested task trees.
    pub fn child(&self, index: u64) -> SeedSequence {
        SeedSequence {
            key: self.child_seed(index),
        }
    }

    /// A deterministic RNG for child `index`.
    ///
    /// ```
    /// use ethpos_stats::SeedSequence;
    /// use rand::Rng;
    ///
    /// let seq = SeedSequence::new(7);
    /// let (mut a, mut b) = (seq.child_rng(1), seq.child_rng(1));
    /// assert_eq!(a.random::<u64>(), b.random::<u64>());
    /// ```
    pub fn child_rng(&self, index: u64) -> StdRng {
        StdRng::seed_from_u64(self.child_seed(index))
    }

    /// An RNG for this sequence's own key (the "trunk" stream).
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn children_are_order_insensitive() {
        // Derive child 5 before and after touching other children, and
        // from an independently reconstructed sequence.
        let a = SeedSequence::new(123);
        let early = a.child_seed(5);
        for i in 0..100 {
            let _ = a.child_seed(i);
        }
        assert_eq!(a.child_seed(5), early);
        assert_eq!(SeedSequence::new(123).child_seed(5), early);
    }

    #[test]
    fn children_are_pairwise_distinct() {
        let seq = SeedSequence::new(0);
        let mut seeds: Vec<u64> = (0..10_000).map(|i| seq.child_seed(i)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 10_000);
    }

    #[test]
    fn sibling_streams_are_uncorrelated() {
        // Adjacent children's RNG outputs should look independent: the
        // fraction of equal leading bits across many draws stays near 1/2.
        let seq = SeedSequence::new(99);
        let mut a = seq.child_rng(0);
        let mut b = seq.child_rng(1);
        let n = 10_000;
        let mut same_bits = 0u32;
        for _ in 0..n {
            let x: u64 = a.random();
            let y: u64 = b.random();
            same_bits += ((x ^ y) >> 63 == 0) as u32;
        }
        let frac = f64::from(same_bits) / f64::from(n);
        assert!((0.45..0.55).contains(&frac), "top-bit agreement {frac}");
    }

    #[test]
    fn nearby_roots_diverge() {
        let a = SeedSequence::new(1);
        let b = SeedSequence::new(2);
        assert_ne!(a.child_seed(0), b.child_seed(0));
        assert_ne!(a.child_seed(0), a.child_seed(1));
        // child-of-child differs from the flat children
        assert_ne!(a.child(0).child_seed(0), a.child_seed(0));
    }

    #[test]
    fn child_rng_matches_child_seed() {
        let seq = SeedSequence::new(7);
        let mut from_rng = seq.child_rng(4);
        let mut manual = crate::seeded_rng(seq.child_seed(4));
        for _ in 0..16 {
            assert_eq!(from_rng.random::<u64>(), manual.random::<u64>());
        }
    }
}

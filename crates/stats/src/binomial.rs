//! Exact binomial and multinomial count sampling.
//!
//! The cohort-compressed state backend marks a churned class by drawing
//! *how many* of a cohort's `c` identical members attest on a branch —
//! a `Binomial(c, p)` count — instead of `c` per-member Bernoulli draws
//! (`ethpos_state::backend::StateBackend::mark_class_counted`). These
//! samplers are **exact**: the returned counts follow the true discrete
//! law, not a normal or Poisson approximation, so count-level marking is
//! distributionally indistinguishable from the per-member reference path
//! at any population size.
//!
//! Two regimes, the classic split:
//!
//! * `n·min(p, 1−p) < 10` — **BINV** (inversion): walk the CDF with the
//!   ratio recurrence `f(x+1)/f(x) = (n−x)/(x+1) · p/q`. O(mean) per
//!   draw, one uniform consumed.
//! * otherwise — **BTPE**-style rejection (Kachitvichyanukul &
//!   Schmeiser, 1988): a triangle/parallelogram/exponential-tail hat
//!   over the scaled pmf with squeeze tests, falling back to a Stirling
//!   series for the exact acceptance comparison. O(1) expected per
//!   draw.
//!
//! Edge cases (`p ∈ {0, 1}`, `n = 0`) return the degenerate count
//! without consuming randomness, so callers may stream draws off a
//! shared `StdRng` without perturbing sibling draws.
//!
//! A k-way churn draw for one cohort is a [`Multinomial`]: a chain of
//! conditional binomials `N_j ~ Binomial(n − N_0 − … − N_{j−1},
//! w_j / (w_j + … + w_{k−1}))` whose joint law is exactly
//! `Multinomial(n, w/Σw)`.

use rand::Rng;

/// Below this `n·min(p, 1−p)`, sampling inverts the CDF directly
/// (BINV); above it, the BTPE rejection scheme is cheaper.
const BINV_THRESHOLD: f64 = 10.0;

/// Iteration cap of one BINV inversion pass. The cap only triggers on
/// the astronomically unlikely uniform that lands beyond ~30 standard
/// deviations (mean < 10, sd < 3.2 in the BINV regime); the draw then
/// restarts with a fresh uniform instead of walking the whole support.
const BINV_MAX_X: u64 = 110;

/// An exact binomial law `Binomial(n, p)` for count sampling.
///
/// # Example
///
/// ```
/// use ethpos_stats::{seeded_rng, Binomial};
///
/// let mut rng = seeded_rng(7);
/// let d = Binomial::new(1_000_000, 0.5);
/// let k = d.sample(&mut rng);
/// assert!((400_000..=600_000).contains(&k));
/// assert_eq!(Binomial::new(9, 0.0).sample(&mut rng), 0);
/// assert_eq!(Binomial::new(9, 1.0).sample(&mut rng), 9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    /// Number of trials.
    pub n: u64,
    /// Success probability.
    pub p: f64,
}

impl Binomial {
    /// Creates a binomial law.
    ///
    /// # Panics
    ///
    /// Panics unless `p ∈ [0, 1]`.
    pub fn new(n: u64, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "binomial needs p in [0, 1], got {p}"
        );
        Binomial { n, p }
    }

    /// Mean `n·p`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Variance `n·p·(1−p)`.
    pub fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }

    /// Draws one exact count.
    ///
    /// Degenerate parameters (`n = 0`, `p ∈ {0, 1}`) return without
    /// consuming randomness.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.n == 0 || self.p <= 0.0 {
            return 0;
        }
        if self.p >= 1.0 {
            return self.n;
        }
        // Work in the p ≤ 1/2 half-plane (counts mirror under p ↔ q).
        let flipped = self.p > 0.5;
        let p = if flipped { 1.0 - self.p } else { self.p };
        let k = if self.n as f64 * p < BINV_THRESHOLD {
            binv(self.n, p, rng)
        } else {
            btpe(self.n, p, rng)
        };
        if flipped {
            self.n - k
        } else {
            k
        }
    }
}

/// CDF inversion for small `n·p` (requires `0 < p ≤ 1/2`).
fn binv<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    let q = 1.0 - p;
    let s = p / q;
    let a = (n + 1) as f64 * s;
    // f(0) = q^n via exp(n·ln1p(−p)) — exact to an ulp even when a
    // direct powi would round through many multiplications.
    let f0 = (n as f64 * (-p).ln_1p()).exp();
    loop {
        let mut r = f0;
        let mut u: f64 = rng.random();
        for x in 0..=BINV_MAX_X.min(n) {
            if u < r {
                return x;
            }
            u -= r;
            r *= a / (x + 1) as f64 - s;
        }
        // Tail overflow (u landed beyond the cap): restart with a fresh
        // uniform rather than walking the far tail.
    }
}

/// BTPE rejection for `n·p ≥ 10` (requires `p ≤ 1/2`).
///
/// Regions of the hat, left to right: exponential left tail, the
/// central triangle over the mode, the two parallelogram wedges, and
/// the exponential right tail. Candidates are squeezed against a
/// quadratic bound before the exact pmf-ratio (or Stirling-series)
/// comparison.
fn btpe<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    let nf = n as f64;
    let r = p;
    let q = 1.0 - r;
    let nrq = nf * r * q;
    let fm = nf * r + r;
    let m = fm.floor();
    let p1 = (2.195 * nrq.sqrt() - 4.6 * q).floor() + 0.5;
    let xm = m + 0.5;
    let xl = xm - p1;
    let xr = xm + p1;
    let c = 0.134 + 20.5 / (15.3 + m);
    let al = (fm - xl) / (fm - xl * r);
    let laml = al * (1.0 + 0.5 * al);
    let ar = (xr - fm) / (xr * q);
    let lamr = ar * (1.0 + 0.5 * ar);
    let p2 = p1 * (1.0 + 2.0 * c);
    let p3 = p2 + c / laml;
    let p4 = p3 + c / lamr;

    loop {
        let u: f64 = rng.random::<f64>() * p4;
        let mut v: f64 = rng.random();
        let y: f64;
        if u <= p1 {
            // Central triangle: accept immediately.
            return (xm - p1 * v + u).floor() as u64;
        } else if u <= p2 {
            // Parallelogram wedges.
            let x = xl + (u - p1) / c;
            v = v * c + 1.0 - (x - xm).abs() / p1;
            if v > 1.0 {
                continue;
            }
            y = x.floor();
        } else if u <= p3 {
            // Left exponential tail.
            y = (xl + v.ln() / laml).floor();
            if y < 0.0 {
                continue;
            }
            v *= (u - p2) * laml;
        } else {
            // Right exponential tail.
            y = (xr - v.ln() / lamr).floor();
            if y > nf {
                continue;
            }
            v *= (u - p3) * lamr;
        }

        // Acceptance test: v ≤ f(y)/f(m)?
        let k = (y - m).abs();
        if k <= 20.0 || k >= 0.5 * nrq - 1.0 {
            // Few steps from the mode (or far tail): evaluate the pmf
            // ratio by the exact recurrence.
            let s = r / q;
            let a = s * (nf + 1.0);
            let mut f = 1.0;
            if m < y {
                let mut i = m;
                while i < y {
                    i += 1.0;
                    f *= a / i - s;
                }
            } else if m > y {
                let mut i = y;
                while i < m {
                    i += 1.0;
                    f /= a / i - s;
                }
            }
            if v <= f {
                return y as u64;
            }
        } else {
            // Squeeze: a quadratic band around the normal-core log-pmf.
            let rho = (k / nrq) * ((k * (k / 3.0 + 0.625) + 1.0 / 6.0) / nrq + 0.5);
            let t = -k * k / (2.0 * nrq);
            let alv = v.ln();
            if alv < t - rho {
                return y as u64;
            }
            if alv <= t + rho {
                // Inconclusive: exact comparison via the Stirling series
                // of ln(f(y)/f(m)).
                let x1 = y + 1.0;
                let f1 = m + 1.0;
                let z = nf + 1.0 - m;
                let w = nf - y + 1.0;
                let bound = xm * (f1 / x1).ln()
                    + (nf - m + 0.5) * (z / w).ln()
                    + (y - m) * (w * r / (x1 * q)).ln()
                    + stirling_tail(f1)
                    + stirling_tail(z)
                    + stirling_tail(x1)
                    + stirling_tail(w);
                if alv <= bound {
                    return y as u64;
                }
            }
        }
    }
}

/// The Stirling-series correction `ln Γ(x) − [(x−1/2)·ln x − x +
/// ln√(2π)]`, truncated after the x⁻⁷ term — BTPE's exact-comparison
/// kernel.
fn stirling_tail(x: f64) -> f64 {
    let x2 = x * x;
    (13860.0 - (462.0 - (132.0 - (99.0 - 140.0 / x2) / x2) / x2) / x2) / x / 166320.0
}

/// Sequential conditional probabilities of a weighted k-way draw:
/// position `j` is taken with probability `w_j / (w_j + … + w_{k−1})`
/// given positions `0..j` were refused; the last position absorbs the
/// rest.
///
/// Computed so the two-branch case is bit-exact: for weights
/// `[p0, 1 − p0]` the tail sum is exactly `1.0` (IEEE-754: the rounding
/// error of `1 − p0` is under half an ulp of 1), so the first
/// conditional probability is exactly `p0`.
pub fn conditional_probabilities(weights: &[f64]) -> Vec<f64> {
    let mut tails = vec![0.0; weights.len()];
    let mut tail = 0.0;
    for (j, w) in weights.iter().enumerate().rev() {
        tail += w;
        tails[j] = tail;
    }
    weights
        .iter()
        .enumerate()
        .map(|(j, w)| {
            if j + 1 == weights.len() {
                1.0
            } else {
                w / tails[j]
            }
        })
        .collect()
}

/// An exact multinomial law `Multinomial(n, w/Σw)`, sampled as a chain
/// of conditional binomials.
///
/// # Example
///
/// ```
/// use ethpos_stats::{seeded_rng, Multinomial};
///
/// let mut rng = seeded_rng(3);
/// let d = Multinomial::new(&[0.2, 0.3, 0.5]);
/// let counts = d.sample(1000, &mut rng);
/// assert_eq!(counts.len(), 3);
/// assert_eq!(counts.iter().sum::<u64>(), 1000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Multinomial {
    /// The conditional-binomial chain (see
    /// [`conditional_probabilities`]).
    cond: Vec<f64>,
}

impl Multinomial {
    /// Creates a multinomial law over `weights` (normalized internally).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, any weight is negative or
    /// non-finite, or all weights are zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "multinomial needs at least one weight");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "multinomial weights must be finite and non-negative, got {weights:?}"
        );
        assert!(
            weights.iter().sum::<f64>() > 0.0,
            "multinomial weights must not all be zero"
        );
        Multinomial {
            cond: conditional_probabilities(weights),
        }
    }

    /// Number of categories.
    pub fn k(&self) -> usize {
        self.cond.len()
    }

    /// Draws exact category counts summing to `n`: the conditional
    /// chain `N_j ~ Binomial(n − Σ_{i<j} N_i, cond_j)` with the last
    /// category absorbing the remainder.
    pub fn sample<R: Rng + ?Sized>(&self, n: u64, rng: &mut R) -> Vec<u64> {
        let k = self.cond.len();
        let mut counts = Vec::with_capacity(k);
        let mut remaining = n;
        for &c in &self.cond[..k - 1] {
            // Conditional probabilities can graze 1.0 from below only by
            // rounding; clamp so `Binomial::new` stays in range.
            let d = Binomial::new(remaining, c.min(1.0)).sample(rng);
            counts.push(d);
            remaining -= d;
        }
        counts.push(remaining);
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;
    use crate::seedseq::SeedSequence;

    #[test]
    fn degenerate_parameters_are_exact_and_consume_no_randomness() {
        let mut rng = seeded_rng(1);
        let before: u64 = {
            let mut probe = seeded_rng(1);
            probe.random()
        };
        assert_eq!(Binomial::new(0, 0.3).sample(&mut rng), 0);
        assert_eq!(Binomial::new(17, 0.0).sample(&mut rng), 0);
        assert_eq!(Binomial::new(17, 1.0).sample(&mut rng), 17);
        // The stream was not consumed.
        assert_eq!(rng.random::<u64>(), before);
    }

    #[test]
    fn n_one_is_a_bernoulli() {
        let mut rng = seeded_rng(5);
        let d = Binomial::new(1, 0.3);
        let mut ones = 0u64;
        for _ in 0..20_000 {
            let k = d.sample(&mut rng);
            assert!(k <= 1);
            ones += k;
        }
        let rate = ones as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn samples_never_exceed_n() {
        let seq = SeedSequence::new(9);
        for (i, &(n, p)) in [(3u64, 0.9), (40, 0.5), (1000, 0.999), (1000, 0.001)]
            .iter()
            .enumerate()
        {
            let mut rng = seq.child_rng(i as u64);
            let d = Binomial::new(n, p);
            for _ in 0..2000 {
                assert!(d.sample(&mut rng) <= n);
            }
        }
    }

    #[test]
    fn determinism_same_seed_same_counts() {
        let d = Binomial::new(1_000_000, 0.37);
        let a: Vec<u64> = {
            let mut rng = seeded_rng(77);
            (0..64).map(|_| d.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = seeded_rng(77);
            (0..64).map(|_| d.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    /// Moment check against the closed forms, across both sampling
    /// regimes (BINV and BTPE) and the p ↔ q mirror.
    #[test]
    fn moments_match_closed_forms_over_many_seeds() {
        let cases = [
            (50u64, 0.08),     // BINV (n·p = 4)
            (200, 0.03),       // BINV
            (200, 0.97),       // BINV after mirror
            (400, 0.5),        // BTPE
            (100_000, 0.2),    // BTPE
            (1_000_000, 0.75), // BTPE after mirror
        ];
        let seq = SeedSequence::new(42);
        for (ci, &(n, p)) in cases.iter().enumerate() {
            let d = Binomial::new(n, p);
            let draws = 30_000usize;
            let mut rng = seq.child_rng(ci as u64);
            let mut sum = 0.0f64;
            let mut sumsq = 0.0f64;
            for _ in 0..draws {
                let k = d.sample(&mut rng) as f64;
                sum += k;
                sumsq += k * k;
            }
            let mean = sum / draws as f64;
            let var = sumsq / draws as f64 - mean * mean;
            let sd = d.variance().sqrt();
            // Mean of `draws` samples has sd σ/√draws; allow 5 of those.
            let mean_tol = 5.0 * sd / (draws as f64).sqrt();
            assert!(
                (mean - d.mean()).abs() < mean_tol,
                "n={n} p={p}: mean {mean} vs {} (tol {mean_tol})",
                d.mean()
            );
            assert!(
                (var / d.variance() - 1.0).abs() < 0.1,
                "n={n} p={p}: var {var} vs {}",
                d.variance()
            );
        }
    }

    /// Chi-square agreement between the count sampler and brute-force
    /// per-member Bernoulli draws at small n: both histograms must be
    /// consistent with the same binomial pmf.
    #[test]
    fn chi_square_agreement_with_per_member_bernoulli() {
        let (n, p) = (12u64, 0.35);
        let draws = 40_000usize;
        let mut count_hist = vec![0u64; n as usize + 1];
        let mut member_hist = vec![0u64; n as usize + 1];
        let mut rng_a = seeded_rng(1001);
        let mut rng_b = seeded_rng(2002);
        let d = Binomial::new(n, p);
        for _ in 0..draws {
            count_hist[d.sample(&mut rng_a) as usize] += 1;
            let brute = (0..n).filter(|_| rng_b.random_bool(p)).count();
            member_hist[brute] += 1;
        }
        // Exact pmf by the ratio recurrence.
        let mut pmf = vec![0.0f64; n as usize + 1];
        pmf[0] = (1.0 - p).powi(n as i32);
        for x in 0..n as usize {
            pmf[x + 1] = pmf[x] * ((n - x as u64) as f64 / (x + 1) as f64) * (p / (1.0 - p));
        }
        for (label, hist) in [("count", &count_hist), ("member", &member_hist)] {
            let mut chi2 = 0.0;
            let mut dof = 0u32;
            for x in 0..=n as usize {
                let expect = pmf[x] * draws as f64;
                if expect < 5.0 {
                    continue; // standard small-cell exclusion
                }
                let obs = hist[x] as f64;
                chi2 += (obs - expect) * (obs - expect) / expect;
                dof += 1;
            }
            // χ² 99.9th percentile at ~10 dof is ≈ 29.6; anything close
            // to that over a fixed seed indicates a real sampler bug.
            assert!(
                chi2 < 35.0,
                "{label} sampler: chi2 = {chi2} over {dof} cells"
            );
        }
    }

    #[test]
    fn multinomial_counts_partition_n() {
        let seq = SeedSequence::new(13);
        let d = Multinomial::new(&[0.08, 1.02, 0.4, 0.5]);
        for i in 0..200 {
            let mut rng = seq.child_rng(i);
            let counts = d.sample(10_000, &mut rng);
            assert_eq!(counts.len(), 4);
            assert_eq!(counts.iter().sum::<u64>(), 10_000);
        }
    }

    #[test]
    fn multinomial_category_means_follow_the_weights() {
        let weights = [0.2, 0.3, 0.5];
        let d = Multinomial::new(&weights);
        let mut rng = seeded_rng(21);
        let n = 1000u64;
        let draws = 20_000usize;
        let mut sums = [0.0f64; 3];
        for _ in 0..draws {
            for (s, c) in sums.iter_mut().zip(d.sample(n, &mut rng)) {
                *s += c as f64;
            }
        }
        for (j, w) in weights.iter().enumerate() {
            let mean = sums[j] / draws as f64;
            let expect = n as f64 * w;
            assert!(
                (mean / expect - 1.0).abs() < 0.01,
                "category {j}: mean {mean} vs {expect}"
            );
        }
    }

    #[test]
    fn multinomial_two_way_first_conditional_is_exact() {
        // The two-branch bit-exactness contract: [p0, 1 − p0] must give
        // the chain [p0, 1.0] with no rounding.
        for p0 in [0.1, 0.25, 0.3333333333333333, 0.5, 0.75] {
            let cond = conditional_probabilities(&[p0, 1.0 - p0]);
            assert_eq!(cond, vec![p0, 1.0]);
        }
    }

    #[test]
    fn multinomial_degenerate_categories() {
        let mut rng = seeded_rng(2);
        // A zero weight gets zero mass; a lone category takes all.
        let counts = Multinomial::new(&[0.0, 1.0]).sample(50, &mut rng);
        assert_eq!(counts, vec![0, 50]);
        assert_eq!(Multinomial::new(&[3.0]).sample(9, &mut rng), vec![9]);
        assert_eq!(
            Multinomial::new(&[0.5, 0.5]).sample(0, &mut rng),
            vec![0, 0]
        );
    }
}

//! Normal and log-normal laws with PDF/CDF/quantile and sampling.

use rand::Rng;

use crate::erf::{normal_cdf, normal_pdf};

/// A normal (Gaussian) distribution `N(mean, sd²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    /// Mean.
    pub mean: f64,
    /// Standard deviation (strictly positive).
    pub sd: f64,
}

impl Normal {
    /// Creates a normal law.
    ///
    /// # Panics
    ///
    /// Panics if `sd` is not strictly positive and finite.
    pub fn new(mean: f64, sd: f64) -> Self {
        assert!(sd > 0.0 && sd.is_finite(), "invalid sd: {sd}");
        Normal { mean, sd }
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        normal_pdf((x - self.mean) / self.sd) / self.sd
    }

    /// Cumulative distribution at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        normal_cdf((x - self.mean) / self.sd)
    }

    /// Quantile (inverse CDF) by bisection on the CDF; accurate to ~1e-10.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 1`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile needs 0 < p < 1, got {p}");
        // bracket in standard units then bisect
        let (mut lo, mut hi) = (-40.0f64, 40.0f64);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if normal_cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        self.mean + self.sd * 0.5 * (lo + hi)
    }

    /// Draws one sample (Box–Muller).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.random_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos();
        self.mean + self.sd * z
    }
}

/// A log-normal law: `ln X ~ N(mu, sigma²)`.
///
/// The paper's Eq. 18–19 show that a bouncing validator's stake follows a
/// log-normal law (in the continuous approximation); this type is its
/// reusable embodiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    /// Mean of `ln X`.
    pub mu: f64,
    /// Standard deviation of `ln X` (strictly positive).
    pub sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal law.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not strictly positive and finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma > 0.0 && sigma.is_finite(), "invalid sigma: {sigma}");
        LogNormal { mu, sigma }
    }

    /// Probability density at `x > 0` (0 elsewhere).
    pub fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        normal_pdf((x.ln() - self.mu) / self.sigma) / (x * self.sigma)
    }

    /// Cumulative distribution at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        normal_cdf((x.ln() - self.mu) / self.sigma)
    }

    /// Mean `exp(mu + sigma²/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }

    /// Median `exp(mu)`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        Normal::new(self.mu, self.sigma).sample(rng).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;
    use proptest::prelude::*;

    #[test]
    fn normal_pdf_integrates_to_one() {
        let n = Normal::new(1.0, 2.0);
        let integral = crate::quadrature::integrate_simpson(|x| n.pdf(x), -20.0, 22.0, 4000);
        assert!((integral - 1.0).abs() < 1e-9, "integral = {integral}");
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        let n = Normal::new(-2.0, 0.7);
        for p in [0.01, 0.25, 0.5, 0.75, 0.99] {
            let x = n.quantile(p);
            assert!((n.cdf(x) - p).abs() < 1e-9);
        }
    }

    #[test]
    fn normal_sampling_matches_moments() {
        let n = Normal::new(3.0, 1.5);
        let mut rng = seeded_rng(42);
        let samples: Vec<f64> = (0..50_000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (samples.len() - 1) as f64;
        assert!((mean - 3.0).abs() < 0.03, "mean = {mean}");
        assert!((var - 2.25).abs() < 0.06, "var = {var}");
    }

    #[test]
    fn lognormal_cdf_at_median_is_half() {
        let ln = LogNormal::new(1.2, 0.4);
        assert!((ln.cdf(ln.median()) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lognormal_mean_formula() {
        let ln = LogNormal::new(0.0, 1.0);
        assert!((ln.mean() - (0.5f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn lognormal_pdf_zero_for_nonpositive() {
        let ln = LogNormal::new(0.0, 1.0);
        assert_eq!(ln.pdf(0.0), 0.0);
        assert_eq!(ln.pdf(-1.0), 0.0);
        assert_eq!(ln.cdf(-1.0), 0.0);
    }

    #[test]
    fn lognormal_sampling_matches_median() {
        let ln = LogNormal::new(2.0, 0.3);
        let mut rng = seeded_rng(7);
        let mut samples: Vec<f64> = (0..20_001).map(|_| ln.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((median / ln.median() - 1.0).abs() < 0.02);
    }

    proptest! {
        #[test]
        fn prop_normal_cdf_monotone(m in -5.0f64..5.0, s in 0.1f64..3.0,
                                    a in -10.0f64..10.0, d in 0.01f64..1.0) {
            let n = Normal::new(m, s);
            prop_assert!(n.cdf(a + d) >= n.cdf(a));
        }

        #[test]
        fn prop_lognormal_cdf_in_unit(mu in -3.0f64..3.0, sigma in 0.1f64..2.0, x in 0.0f64..100.0) {
            let ln = LogNormal::new(mu, sigma);
            let p = ln.cdf(x);
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }
}

//! Scalar root finding: bisection and Brent's method.
//!
//! Used to solve the paper's Eq. 10 (semi-active conflicting-finalization
//! epoch), which has no closed form.

use core::fmt;

/// Root-finding failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootError {
    /// `f(lo)` and `f(hi)` have the same sign — no bracketed root.
    NotBracketed,
    /// The iteration limit was reached before convergence.
    NoConvergence,
}

impl fmt::Display for RootError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RootError::NotBracketed => write!(f, "root is not bracketed by the interval"),
            RootError::NoConvergence => write!(f, "root finding did not converge"),
        }
    }
}

impl std::error::Error for RootError {}

/// Finds a root of `f` in `[lo, hi]` by bisection to absolute tolerance
/// `tol` on the abscissa.
///
/// # Errors
///
/// Returns [`RootError::NotBracketed`] if `f(lo)·f(hi) > 0`.
pub fn bisect<F: Fn(f64) -> f64>(
    f: F,
    mut lo: f64,
    mut hi: f64,
    tol: f64,
) -> Result<f64, RootError> {
    let flo = f(lo);
    let fhi = f(hi);
    if flo == 0.0 {
        return Ok(lo);
    }
    if fhi == 0.0 {
        return Ok(hi);
    }
    if flo.signum() == fhi.signum() {
        return Err(RootError::NotBracketed);
    }
    let mut flo = flo;
    for _ in 0..20_000 {
        let mid = 0.5 * (lo + hi);
        if hi - lo < tol {
            return Ok(mid);
        }
        let fmid = f(mid);
        if fmid == 0.0 {
            return Ok(mid);
        }
        if fmid.signum() == flo.signum() {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    Err(RootError::NoConvergence)
}

/// Finds a root of `f` in `[lo, hi]` by Brent's method (inverse quadratic
/// interpolation with bisection fallback), to absolute tolerance `tol`.
///
/// # Errors
///
/// Returns [`RootError::NotBracketed`] if `f(lo)·f(hi) > 0` and
/// [`RootError::NoConvergence`] after 200 iterations.
pub fn brent<F: Fn(f64) -> f64>(f: F, lo: f64, hi: f64, tol: f64) -> Result<f64, RootError> {
    let mut a = lo;
    let mut b = hi;
    let mut fa = f(a);
    let mut fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(RootError::NotBracketed);
    }
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut e = d;

    for _ in 0..200 {
        if fb.abs() > fc.abs() {
            a = b;
            b = c;
            c = a;
            fa = fb;
            fb = fc;
            fc = fa;
        }
        let tol1 = 2.0 * f64::EPSILON * b.abs() + 0.5 * tol;
        let xm = 0.5 * (c - b);
        if xm.abs() <= tol1 || fb == 0.0 {
            return Ok(b);
        }
        if e.abs() >= tol1 && fa.abs() > fb.abs() {
            // attempt inverse quadratic interpolation
            let s = fb / fa;
            let (mut p, mut q);
            if a == c {
                p = 2.0 * xm * s;
                q = 1.0 - s;
            } else {
                let qq = fa / fc;
                let r = fb / fc;
                p = s * (2.0 * xm * qq * (qq - r) - (b - a) * (r - 1.0));
                q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
            }
            if p > 0.0 {
                q = -q;
            }
            p = p.abs();
            let min1 = 3.0 * xm * q - (tol1 * q).abs();
            let min2 = (e * q).abs();
            if 2.0 * p < min1.min(min2) {
                e = d;
                d = p / q;
            } else {
                d = xm;
                e = d;
            }
        } else {
            d = xm;
            e = d;
        }
        a = b;
        fa = fb;
        if d.abs() > tol1 {
            b += d;
        } else {
            b += tol1 * xm.signum();
        }
        fb = f(b);
        if fb.signum() == fc.signum() {
            c = a;
            fc = fa;
            d = b - a;
            e = d;
        }
    }
    Err(RootError::NoConvergence)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12).unwrap();
        assert!((r - core::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn brent_finds_sqrt2() {
        let r = brent(|x| x * x - 2.0, 0.0, 2.0, 1e-14).unwrap();
        assert!((r - core::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn brent_handles_transcendental() {
        // x = cos(x) has root ~0.7390851332151607
        let r = brent(|x| x - x.cos(), 0.0, 1.0, 1e-14).unwrap();
        assert!((r - 0.739_085_133_215_160_7).abs() < 1e-12);
    }

    #[test]
    fn unbracketed_is_an_error() {
        assert_eq!(
            bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-9),
            Err(RootError::NotBracketed)
        );
        assert_eq!(
            brent(|x| x * x + 1.0, -1.0, 1.0, 1e-9),
            Err(RootError::NotBracketed)
        );
    }

    #[test]
    fn endpoint_roots_are_returned() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-9), Ok(0.0));
        assert_eq!(brent(|x| x - 1.0, 0.0, 1.0, 1e-9), Ok(1.0));
    }

    proptest! {
        #[test]
        fn prop_brent_matches_bisect(root in -10.0f64..10.0, scale in 0.1f64..5.0) {
            // f(x) = scale * (x - root) on a bracketing interval
            let f = |x: f64| scale * (x - root);
            let rb = bisect(f, root - 3.0, root + 7.0, 1e-10).unwrap();
            let rn = brent(f, root - 3.0, root + 7.0, 1e-12).unwrap();
            prop_assert!((rb - root).abs() < 1e-8);
            prop_assert!((rn - root).abs() < 1e-8);
        }
    }
}
